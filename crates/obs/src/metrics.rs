//! Typed metrics: counters, gauges, histograms, and text exposition.
//!
//! Metric names follow Prometheus conventions and may carry a label block,
//! e.g. `tsmo_worker_busy_fraction{worker="0"}`. The registry stores plain
//! values keyed by the full sample name in a `BTreeMap`, so exposition
//! order is deterministic. Unlike events, metrics *may* hold wall-clock
//! derived values (busy fractions, runtimes) — they feed dashboards and
//! summaries, not the reproducibility proof.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Shared metric names, so emitters and consumers agree.
pub mod names {
    /// Selection steps completed (counter).
    pub const ITERATIONS: &str = "tsmo_iterations_total";
    /// Restarts from memory (counter; see the labeled variants).
    pub const RESTARTS: &str = "tsmo_restarts_total";
    /// Restarts due to an empty admissible pool (counter).
    pub const RESTARTS_EMPTY_POOL: &str = "tsmo_restarts_total{reason=\"empty_pool\"}";
    /// Restarts due to archive stagnation (counter).
    pub const RESTARTS_STAGNATION: &str = "tsmo_restarts_total{reason=\"stagnation\"}";
    /// Neighbors rejected by the tabu list (counter).
    pub const TABU_HITS: &str = "tsmo_tabu_hits_total";
    /// Tabu neighbors rescued by aspiration (counter).
    pub const ASPIRATIONS: &str = "tsmo_aspirations_total";
    /// Accepted `M_archive` insertions (counter).
    pub const ARCHIVE_INSERTS: &str = "tsmo_archive_inserts_total";
    /// Accepted `M_nondom` insertions (counter).
    pub const NONDOM_INSERTS: &str = "tsmo_nondom_inserts_total";
    /// Objective evaluations consumed (counter).
    pub const EVALUATIONS: &str = "tsmo_evaluations_total";
    /// Multisearch messages sent on communication lists (counter).
    pub const EXCHANGE_SENT: &str = "tsmo_exchange_sent_total";
    /// Multisearch messages drained from inboxes (counter).
    pub const EXCHANGE_RECEIVED: &str = "tsmo_exchange_received_total";
    /// Stale neighbors consumed by steps (counter).
    pub const STALE_NEIGHBORS: &str = "tsmo_stale_neighbors_total";
    /// Largest staleness (iterations) seen in any step (gauge).
    pub const STALENESS_MAX: &str = "tsmo_staleness_max";
    /// Final archive size (gauge).
    pub const ARCHIVE_SIZE: &str = "tsmo_archive_size";
    /// Wall-clock runtime of the run (gauge, seconds).
    pub const RUNTIME_SECONDS: &str = "tsmo_runtime_seconds";
    /// Pool size offered to each step (histogram).
    pub const POOL_SIZE: &str = "tsmo_pool_size";
    /// Per-neighbor staleness in iterations (histogram).
    pub const NEIGHBOR_STALENESS: &str = "tsmo_neighbor_staleness";
    /// Master-observed result queue depth at each poll (histogram).
    pub const RESULT_QUEUE_DEPTH: &str = "tsmo_result_queue_depth";
    /// Faults injected by the fault layer, all kinds (counter).
    pub const FAULTS_INJECTED: &str = "tsmo_faults_injected_total";
    /// Panicked or lost tasks resent by the supervisor (counter).
    pub const TASKS_RESENT: &str = "tsmo_tasks_resent_total";
    /// Tasks abandoned after the retry budget was exhausted (counter).
    pub const TASKS_LOST: &str = "tsmo_tasks_lost_total";
    /// Workers quarantined after consecutive panics (counter).
    pub const WORKERS_QUARANTINED: &str = "tsmo_workers_quarantined_total";
    /// Quarantined workers replaced with fresh threads (counter).
    pub const WORKERS_RESPAWNED: &str = "tsmo_workers_respawned_total";
    /// Exchange messages skipped because every peer was dead (counter).
    pub const EXCHANGE_UNDELIVERABLE: &str = "tsmo_exchange_undeliverable_total";
    /// 1 while the run is in master-only degraded mode, else 0 (gauge).
    pub const DEGRADED_MODE: &str = "tsmo_degraded_mode";
    /// Solver-service jobs admitted to the queue (counter).
    pub const JOBS_ADMITTED: &str = "tsmo_jobs_admitted_total";
    /// Jobs rejected with `QueueFull` backpressure (counter).
    pub const JOBS_REJECTED: &str = "tsmo_jobs_rejected_total";
    /// Jobs whose run was truncated by an explicit Cancel (counter).
    pub const JOBS_CANCELLED: &str = "tsmo_jobs_cancelled_total";
    /// Jobs whose run was truncated by their deadline (counter).
    pub const JOBS_DEADLINE_EXCEEDED: &str = "tsmo_jobs_deadline_exceeded_total";
    /// Jobs that reached a terminal state, truncated or not (counter).
    pub const JOBS_COMPLETED: &str = "tsmo_jobs_completed_total";
    /// Current solver-service queue depth (gauge).
    pub const QUEUE_DEPTH: &str = "tsmo_queue_depth";
    /// Submit-to-result latency of completed jobs, milliseconds
    /// (histogram; the default buckets cover 0–250 ms, larger runs land
    /// in `+Inf`).
    pub const JOB_LATENCY_MS: &str = "tsmo_job_latency_ms";
    /// Instance-cache lookups answered without re-parsing (counter).
    pub const INSTANCE_CACHE_HITS: &str = "tsmo_instance_cache_hits_total";
    /// Instance-cache lookups that had to parse the payload (counter).
    pub const INSTANCE_CACHE_MISSES: &str = "tsmo_instance_cache_misses_total";

    /// Cluster exchange payloads sent, all peers (counter; see the
    /// per-peer labeled variant [`exchanges_sent_to_peer`]).
    pub const EXCHANGES_SENT: &str = "tsmo_exchanges_sent_total";
    /// Cluster exchange payloads received, all peers (counter; see the
    /// per-peer labeled variant [`exchanges_received_from_peer`]).
    pub const EXCHANGES_RECEIVED: &str = "tsmo_exchanges_received_total";
    /// Round-trip time of peer handshakes/probes, milliseconds (histogram).
    pub const PEER_RTT_MS: &str = "tsmo_peer_rtt_ms";
    /// Peers declared dead after a failed delivery (counter).
    pub const PEERS_DEAD: &str = "tsmo_peers_dead_total";
    /// Dead peers re-admitted by a successful probe (counter).
    pub const PEERS_READMITTED: &str = "tsmo_peers_readmitted_total";

    /// Nodes admitted into the cluster membership (counter; one per
    /// `member_joined` event).
    pub const MEMBERS_JOINED: &str = "tsmo_members_joined_total";
    /// Nodes that left the membership — graceful leave or declared dead
    /// (counter; one per `member_left` event).
    pub const MEMBERS_LEFT: &str = "tsmo_members_left_total";
    /// Contiguous searcher-id slices reassigned by the rebalancer
    /// (counter; one per `slice_rebalanced` event).
    pub const SLICES_REBALANCED: &str = "tsmo_slices_rebalanced_total";
    /// Archive checkpoints delivered to a ring successor (counter; one
    /// per `archive_replicated` event).
    pub const ARCHIVES_REPLICATED: &str = "tsmo_archives_replicated_total";
    /// Node fronts restored from a successor's replica — on re-admission
    /// or at final merge (counter).
    pub const ARCHIVES_RECOVERED: &str = "tsmo_archives_recovered_total";
    /// Current membership epoch (gauge; bumps on every join/leave).
    pub const MEMBERSHIP_EPOCH: &str = "tsmo_membership_epoch";

    /// Trajectory-trace ring-buffer points overwritten before export
    /// (counter).
    pub const TRACE_DROPPED: &str = "tsmo_trace_dropped_total";

    /// Portfolio rounds scored (counter; one per contender per round).
    pub const PORTFOLIO_ROUNDS_SCORED: &str = "tsmo_portfolio_rounds_scored_total";
    /// Portfolio budget slices granted (counter).
    pub const PORTFOLIO_REALLOCATIONS: &str = "tsmo_portfolio_reallocations_total";
    /// Contenders retired at the budget floor (counter).
    pub const PORTFOLIO_CONTENDERS_RETIRED: &str = "tsmo_portfolio_contenders_retired_total";
    /// Evaluations spent through portfolio slices (counter).
    pub const PORTFOLIO_EVALUATIONS: &str = "tsmo_portfolio_evaluations_total";

    /// Per-phase closed-span count from the self-profiler (counter).
    pub fn span_calls(span: &str) -> String {
        format!("tsmo_span_calls_total{{span=\"{span}\"}}")
    }

    /// Per-phase wall seconds folded by the self-profiler (gauge; wall
    /// clock, so it lives in metrics, never events).
    pub fn span_seconds(span: &str) -> String {
        format!("tsmo_span_seconds_total{{span=\"{span}\"}}")
    }

    /// Per-peer sent-exchange sample name (counter).
    pub fn exchanges_sent_to_peer(peer: usize) -> String {
        format!("tsmo_exchanges_sent_total{{peer=\"{peer}\"}}")
    }

    /// Per-peer received-exchange sample name (counter).
    pub fn exchanges_received_from_peer(peer: usize) -> String {
        format!("tsmo_exchanges_received_total{{peer=\"{peer}\"}}")
    }

    /// Per-worker busy fraction sample name (gauge in `[0, 1]`).
    pub fn worker_busy_fraction(worker: usize) -> String {
        format!("tsmo_worker_busy_fraction{{worker=\"{worker}\"}}")
    }

    /// Per-worker completed task count (counter).
    pub fn worker_tasks(worker: usize) -> String {
        format!("tsmo_worker_tasks_total{{worker=\"{worker}\"}}")
    }
}

/// Histogram bucket upper bounds (`+Inf` is implicit). Tuned for the small
/// integer quantities the search emits (pool sizes, staleness, depths).
pub const DEFAULT_BUCKETS: [f64; 9] = [0.0, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0];

/// A fixed-bucket histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Observation count per bucket in [`DEFAULT_BUCKETS`] order.
    pub buckets: [u64; DEFAULT_BUCKETS.len()],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Largest observed value (`None` when empty).
    pub max: Option<f64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; DEFAULT_BUCKETS.len()],
            count: 0,
            sum: 0.0,
            max: None,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        for (i, bound) in DEFAULT_BUCKETS.iter().enumerate() {
            if value <= *bound {
                self.buckets[i] += 1;
            }
        }
        self.count += 1;
        self.sum += value;
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    /// Mean observed value (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

/// Deterministically ordered store of all metric families.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// `tsmo_worker_busy_fraction{worker="0"}` → `tsmo_worker_busy_fraction`.
fn family(sample_name: &str) -> &str {
    sample_name.split('{').next().unwrap_or(sample_name)
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a counter, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets a gauge to `value`.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Sets a gauge to the max of its current value and `value`.
    pub fn gauge_max(&mut self, name: &str, value: f64) {
        let slot = self
            .gauges
            .entry(name.to_string())
            .or_insert(f64::NEG_INFINITY);
        if value > *slot {
            *slot = value;
        }
    }

    /// Records one histogram observation.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Reads a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Reads a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Merges another registry into this one: counters add, gauges take
    /// the maximum (they are all "largest seen" or fractions where max is
    /// the conservative combine), histogram buckets add.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, delta) in &other.counters {
            self.counter_add(name, *delta);
        }
        for (name, value) in &other.gauges {
            self.gauge_max(name, *value);
        }
        for (name, hist) in &other.histograms {
            let slot = self.histograms.entry(name.clone()).or_default();
            for (b, add) in slot.buckets.iter_mut().zip(hist.buckets.iter()) {
                *b += add;
            }
            slot.count += hist.count;
            slot.sum += hist.sum;
            slot.max = match (slot.max, hist.max) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        }
    }

    /// Renders the registry in the Prometheus text exposition format.
    /// Output is fully deterministic given equal registry contents.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = "";
        for (name, value) in &self.counters {
            let fam = family(name);
            if fam != last_family {
                let _ = writeln!(out, "# TYPE {fam} counter");
                last_family = fam;
            }
            let _ = writeln!(out, "{name} {value}");
        }
        last_family = "";
        for (name, value) in &self.gauges {
            let fam = family(name);
            if fam != last_family {
                let _ = writeln!(out, "# TYPE {fam} gauge");
                last_family = fam;
            }
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, hist) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (bound, count) in DEFAULT_BUCKETS.iter().zip(hist.buckets.iter()) {
                let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {count}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
            let _ = writeln!(out, "{name}_sum {}", hist.sum);
            let _ = writeln!(out, "{name}_count {}", hist.count);
        }
        out
    }

    /// Renders a human-readable end-of-run summary.
    pub fn summary(&self) -> String {
        let mut out = String::from("== run summary ==\n");
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<55} {value}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<55} {value:.4}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (count / mean / max):\n");
            for (name, hist) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<55} {} / {:.2} / {:.0}",
                    hist.count,
                    hist.mean().unwrap_or(0.0),
                    hist.max.unwrap_or(0.0)
                );
            }
        }
        out
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let mut m = MetricsRegistry::new();
        m.counter_add(names::ITERATIONS, 3);
        m.counter_add(names::ITERATIONS, 2);
        assert_eq!(m.counter(names::ITERATIONS), 5);
        assert_eq!(m.counter("never_touched"), 0);
    }

    #[test]
    fn gauge_max_keeps_largest() {
        let mut m = MetricsRegistry::new();
        m.gauge_max(names::STALENESS_MAX, 2.0);
        m.gauge_max(names::STALENESS_MAX, 7.0);
        m.gauge_max(names::STALENESS_MAX, 4.0);
        assert_eq!(m.gauge(names::STALENESS_MAX), Some(7.0));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut h = Histogram::default();
        for v in [0.0, 1.0, 3.0, 30.0] {
            h.observe(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 34.0);
        assert_eq!(h.max, Some(30.0));
        // le=0 sees one, le=1 two, le=5 three, le=50 all four.
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[3], 3);
        assert_eq!(h.buckets[6], 4);
    }

    #[test]
    fn prometheus_output_is_deterministic_and_typed() {
        let mut m = MetricsRegistry::new();
        m.counter_add(names::RESTARTS_STAGNATION, 2);
        m.counter_add(names::RESTARTS_EMPTY_POOL, 1);
        m.gauge_set(&names::worker_busy_fraction(0), 0.75);
        m.observe(names::POOL_SIZE, 60.0);
        let text = m.to_prometheus();
        assert_eq!(text, m.clone().to_prometheus());
        assert!(text.contains("# TYPE tsmo_restarts_total counter"));
        // One TYPE line covers both labeled samples of the family.
        assert_eq!(text.matches("# TYPE tsmo_restarts_total").count(), 1);
        assert!(text.contains("tsmo_restarts_total{reason=\"empty_pool\"} 1"));
        assert!(text.contains("tsmo_worker_busy_fraction{worker=\"0\"} 0.75"));
        assert!(text.contains("tsmo_pool_size_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("tsmo_pool_size_count 1"));
    }

    #[test]
    fn merge_adds_counters_and_maxes_gauges() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.counter_add(names::ITERATIONS, 10);
        b.counter_add(names::ITERATIONS, 5);
        a.gauge_max(names::STALENESS_MAX, 3.0);
        b.gauge_max(names::STALENESS_MAX, 9.0);
        a.observe(names::POOL_SIZE, 10.0);
        b.observe(names::POOL_SIZE, 20.0);
        a.merge(&b);
        assert_eq!(a.counter(names::ITERATIONS), 15);
        assert_eq!(a.gauge(names::STALENESS_MAX), Some(9.0));
        let h = a.histogram(names::POOL_SIZE).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 30.0);
    }

    #[test]
    fn summary_mentions_all_sections() {
        let mut m = MetricsRegistry::new();
        m.counter_add(names::ITERATIONS, 1);
        m.gauge_set(names::RUNTIME_SECONDS, 1.5);
        m.observe(names::POOL_SIZE, 3.0);
        let s = m.summary();
        assert!(s.contains("counters:"));
        assert!(s.contains("gauges:"));
        assert!(s.contains("histograms"));
        assert!(s.contains(names::ITERATIONS));
    }
}
