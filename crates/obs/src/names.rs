//! Central registry of metric and event-type names.
//!
//! Every metric sample name and every event `type` string used anywhere
//! in the suite is declared here, so emitters (the search core, the
//! parallel runtimes, the cluster, the solver service) and consumers
//! (`benchdiff`, `clusterctl`, `servectl top`, dashboards) agree by
//! construction instead of by convention. Adding a metric means adding a
//! constant (or labeled-name helper) here first; grepping for a name
//! string outside this module is a bug.
//!
//! Metric names follow Prometheus conventions (`tsmo_` prefix, `_total`
//! suffix on counters); labeled samples inline the label block, e.g.
//! `tsmo_operator_proposed_total{operator="relocate"}`. Event-type
//! strings live in the [`events`] submodule and match the `"type"` field
//! of the JSONL stream byte-for-byte.

/// Selection steps completed (counter).
pub const ITERATIONS: &str = "tsmo_iterations_total";
/// Restarts from memory (counter; see the labeled variants).
pub const RESTARTS: &str = "tsmo_restarts_total";
/// Restarts due to an empty admissible pool (counter).
pub const RESTARTS_EMPTY_POOL: &str = "tsmo_restarts_total{reason=\"empty_pool\"}";
/// Restarts due to archive stagnation (counter).
pub const RESTARTS_STAGNATION: &str = "tsmo_restarts_total{reason=\"stagnation\"}";
/// Neighbors rejected by the tabu list (counter).
pub const TABU_HITS: &str = "tsmo_tabu_hits_total";
/// Tabu neighbors rescued by aspiration (counter).
pub const ASPIRATIONS: &str = "tsmo_aspirations_total";
/// Accepted `M_archive` insertions (counter).
pub const ARCHIVE_INSERTS: &str = "tsmo_archive_inserts_total";
/// Accepted `M_nondom` insertions (counter).
pub const NONDOM_INSERTS: &str = "tsmo_nondom_inserts_total";
/// Objective evaluations consumed (counter).
pub const EVALUATIONS: &str = "tsmo_evaluations_total";
/// Multisearch messages sent on communication lists (counter).
pub const EXCHANGE_SENT: &str = "tsmo_exchange_sent_total";
/// Multisearch messages drained from inboxes (counter).
pub const EXCHANGE_RECEIVED: &str = "tsmo_exchange_received_total";
/// Stale neighbors consumed by steps (counter).
pub const STALE_NEIGHBORS: &str = "tsmo_stale_neighbors_total";
/// Largest staleness (iterations) seen in any step (gauge).
pub const STALENESS_MAX: &str = "tsmo_staleness_max";
/// Final archive size (gauge).
pub const ARCHIVE_SIZE: &str = "tsmo_archive_size";
/// Wall-clock runtime of the run (gauge, seconds).
pub const RUNTIME_SECONDS: &str = "tsmo_runtime_seconds";
/// Pool size offered to each step (histogram).
pub const POOL_SIZE: &str = "tsmo_pool_size";
/// Per-neighbor staleness in iterations (histogram).
pub const NEIGHBOR_STALENESS: &str = "tsmo_neighbor_staleness";
/// Master-observed result queue depth at each poll (histogram).
pub const RESULT_QUEUE_DEPTH: &str = "tsmo_result_queue_depth";
/// Faults injected by the fault layer, all kinds (counter).
pub const FAULTS_INJECTED: &str = "tsmo_faults_injected_total";
/// Panicked or lost tasks resent by the supervisor (counter).
pub const TASKS_RESENT: &str = "tsmo_tasks_resent_total";
/// Tasks abandoned after the retry budget was exhausted (counter).
pub const TASKS_LOST: &str = "tsmo_tasks_lost_total";
/// Workers quarantined after consecutive panics (counter).
pub const WORKERS_QUARANTINED: &str = "tsmo_workers_quarantined_total";
/// Quarantined workers replaced with fresh threads (counter).
pub const WORKERS_RESPAWNED: &str = "tsmo_workers_respawned_total";
/// Exchange messages skipped because every peer was dead (counter).
pub const EXCHANGE_UNDELIVERABLE: &str = "tsmo_exchange_undeliverable_total";
/// 1 while the run is in master-only degraded mode, else 0 (gauge).
pub const DEGRADED_MODE: &str = "tsmo_degraded_mode";
/// Solver-service jobs admitted to the queue (counter).
pub const JOBS_ADMITTED: &str = "tsmo_jobs_admitted_total";
/// Jobs rejected with `QueueFull` backpressure (counter).
pub const JOBS_REJECTED: &str = "tsmo_jobs_rejected_total";
/// Jobs whose run was truncated by an explicit Cancel (counter).
pub const JOBS_CANCELLED: &str = "tsmo_jobs_cancelled_total";
/// Jobs whose run was truncated by their deadline (counter).
pub const JOBS_DEADLINE_EXCEEDED: &str = "tsmo_jobs_deadline_exceeded_total";
/// Jobs that reached a terminal state, truncated or not (counter).
pub const JOBS_COMPLETED: &str = "tsmo_jobs_completed_total";
/// Current solver-service queue depth (gauge).
pub const QUEUE_DEPTH: &str = "tsmo_queue_depth";
/// Submit-to-result latency of completed jobs, milliseconds
/// (histogram; the default buckets cover 0–250 ms, larger runs land
/// in `+Inf`).
pub const JOB_LATENCY_MS: &str = "tsmo_job_latency_ms";
/// Instance-cache lookups answered without re-parsing (counter).
pub const INSTANCE_CACHE_HITS: &str = "tsmo_instance_cache_hits_total";
/// Instance-cache lookups that had to parse the payload (counter).
pub const INSTANCE_CACHE_MISSES: &str = "tsmo_instance_cache_misses_total";

/// Cluster exchange payloads sent, all peers (counter; see the
/// per-peer labeled variant [`exchanges_sent_to_peer`]).
pub const EXCHANGES_SENT: &str = "tsmo_exchanges_sent_total";
/// Cluster exchange payloads received, all peers (counter; see the
/// per-peer labeled variant [`exchanges_received_from_peer`]).
pub const EXCHANGES_RECEIVED: &str = "tsmo_exchanges_received_total";
/// Round-trip time of peer handshakes/probes, milliseconds (histogram).
pub const PEER_RTT_MS: &str = "tsmo_peer_rtt_ms";
/// Peers declared dead after a failed delivery (counter).
pub const PEERS_DEAD: &str = "tsmo_peers_dead_total";
/// Dead peers re-admitted by a successful probe (counter).
pub const PEERS_READMITTED: &str = "tsmo_peers_readmitted_total";

/// Nodes admitted into the cluster membership (counter; one per
/// `member_joined` event).
pub const MEMBERS_JOINED: &str = "tsmo_members_joined_total";
/// Nodes that left the membership — graceful leave or declared dead
/// (counter; one per `member_left` event).
pub const MEMBERS_LEFT: &str = "tsmo_members_left_total";
/// Contiguous searcher-id slices reassigned by the rebalancer
/// (counter; one per `slice_rebalanced` event).
pub const SLICES_REBALANCED: &str = "tsmo_slices_rebalanced_total";
/// Archive checkpoints delivered to a ring successor (counter; one
/// per `archive_replicated` event).
pub const ARCHIVES_REPLICATED: &str = "tsmo_archives_replicated_total";
/// Node fronts restored from a successor's replica — on re-admission
/// or at final merge (counter).
pub const ARCHIVES_RECOVERED: &str = "tsmo_archives_recovered_total";
/// Current membership epoch (gauge; bumps on every join/leave).
pub const MEMBERSHIP_EPOCH: &str = "tsmo_membership_epoch";

/// Trajectory-trace ring-buffer points overwritten before export
/// (counter).
pub const TRACE_DROPPED: &str = "tsmo_trace_dropped_total";

/// Portfolio rounds scored (counter; one per contender per round).
pub const PORTFOLIO_ROUNDS_SCORED: &str = "tsmo_portfolio_rounds_scored_total";
/// Portfolio budget slices granted (counter).
pub const PORTFOLIO_REALLOCATIONS: &str = "tsmo_portfolio_reallocations_total";
/// Contenders retired at the budget floor (counter).
pub const PORTFOLIO_CONTENDERS_RETIRED: &str = "tsmo_portfolio_contenders_retired_total";
/// Evaluations spent through portfolio slices (counter).
pub const PORTFOLIO_EVALUATIONS: &str = "tsmo_portfolio_evaluations_total";

// ---- operator attribution (tsmo-insight) ------------------------------

/// Moves drawn by the sampler, per operator — the raw proposal count
/// before any feasibility filter (counter family; labeled by operator).
pub const OPERATOR_PROPOSED: &str = "tsmo_operator_proposed_total";
/// Proposals that survived arc-feasibility and capacity filters and
/// entered the candidate pool (counter family; labeled by operator).
pub const OPERATOR_FEASIBLE: &str = "tsmo_operator_feasible_total";
/// Pool neighbors selected as the next current solution (counter
/// family; labeled by operator).
pub const OPERATOR_ACCEPTED: &str = "tsmo_operator_accepted_total";
/// Selected neighbors that entered `M_archive` — the paper's
/// "improving solutions" (counter family; labeled by operator).
pub const OPERATOR_IMPROVING: &str = "tsmo_operator_improving_total";
/// Pool neighbors rejected by the tabu list without aspiration
/// (counter family; labeled by operator).
pub const OPERATOR_TABU_REJECTED: &str = "tsmo_operator_tabu_rejected_total";
/// Tabu pool neighbors rescued by the aspiration criterion (counter
/// family; labeled by operator).
pub const OPERATOR_ASPIRATION: &str = "tsmo_operator_aspiration_total";

/// Entries pruned out of `M_archive` by dominating insertions
/// (counter).
pub const ARCHIVE_PRUNES: &str = "tsmo_archive_prunes_total";
/// Final 2-D hypervolume of `M_archive` projected to
/// (distance, vehicles) (gauge).
pub const ARCHIVE_HYPERVOLUME: &str = "tsmo_archive_hypervolume";
/// Hypervolume gained over the run: final minus first-insert baseline
/// (gauge).
pub const ARCHIVE_HYPERVOLUME_DELTA: &str = "tsmo_archive_hypervolume_delta";
/// Longest run of consecutive steps without an `M_archive` change
/// (gauge).
pub const STAGNATION_STREAK_MAX: &str = "tsmo_stagnation_streak_max";
/// Times the stagnation limit was reached and a `search_stagnated`
/// event fired (counter).
pub const SEARCH_STAGNATED: &str = "tsmo_search_stagnated_total";

/// Sample name of one operator-attribution counter, e.g.
/// `operator_counter(OPERATOR_PROPOSED, "relocate")` →
/// `tsmo_operator_proposed_total{operator="relocate"}`.
pub fn operator_counter(family: &str, operator: &str) -> String {
    format!("{family}{{operator=\"{operator}\"}}")
}

// ---- federation -------------------------------------------------------

/// Per-node liveness gauge in a merged exposition: 1 if the node
/// answered the metrics fetch, 0 if it was down (gauge).
pub fn node_up(node: &str) -> String {
    format!("tsmo_node_up{{node=\"{node}\"}}")
}

/// Per-phase closed-span count from the self-profiler (counter).
pub fn span_calls(span: &str) -> String {
    format!("tsmo_span_calls_total{{span=\"{span}\"}}")
}

/// Per-phase wall seconds folded by the self-profiler (gauge; wall
/// clock, so it lives in metrics, never events).
pub fn span_seconds(span: &str) -> String {
    format!("tsmo_span_seconds_total{{span=\"{span}\"}}")
}

/// Per-peer sent-exchange sample name (counter).
pub fn exchanges_sent_to_peer(peer: usize) -> String {
    format!("tsmo_exchanges_sent_total{{peer=\"{peer}\"}}")
}

/// Per-peer received-exchange sample name (counter).
pub fn exchanges_received_from_peer(peer: usize) -> String {
    format!("tsmo_exchanges_received_total{{peer=\"{peer}\"}}")
}

/// Per-worker busy fraction sample name (gauge in `[0, 1]`).
pub fn worker_busy_fraction(worker: usize) -> String {
    format!("tsmo_worker_busy_fraction{{worker=\"{worker}\"}}")
}

/// Per-worker completed task count (counter).
pub fn worker_tasks(worker: usize) -> String {
    format!("tsmo_worker_tasks_total{{worker=\"{worker}\"}}")
}

/// Event-type strings of the JSONL stream. Each constant is the exact
/// value of the `"type"` field written by
/// [`TimedEvent::to_json_line`](crate::TimedEvent::to_json_line) and
/// matched by the parser.
pub mod events {
    /// One selection step completed.
    pub const ITERATION: &str = "iteration";
    /// The search restarted from memory.
    pub const RESTART: &str = "restart";
    /// A solution entered `M_archive`.
    pub const ARCHIVE_INSERT: &str = "archive_insert";
    /// A neighbor was rejected (or rescued) by the tabu list.
    pub const TABU_HIT: &str = "tabu_hit";
    /// A collaborative exchange on the communication lists.
    pub const EXCHANGE: &str = "exchange";
    /// The master dispatched a neighborhood task to a worker.
    pub const WORKER_TASK: &str = "worker_task";
    /// A worker returned an evaluated chunk to the master.
    pub const WORKER_RESULT: &str = "worker_result";
    /// Stale neighbors were consumed by a step.
    pub const STALENESS: &str = "staleness";
    /// The fault layer injected a fault.
    pub const FAULT_INJECTED: &str = "fault_injected";
    /// The supervisor resent a panicked or lost task.
    pub const TASK_RESENT: &str = "task_resent";
    /// A worker was taken out of the dispatch rotation.
    pub const WORKER_QUARANTINED: &str = "worker_quarantined";
    /// A quarantined worker was replaced and re-admitted.
    pub const WORKER_RESPAWNED: &str = "worker_respawned";
    /// The live worker pool fell below the quorum.
    pub const DEGRADED_MODE: &str = "degraded_mode";
    /// A communication-list peer was declared dead.
    pub const PEER_DEAD: &str = "peer_dead";
    /// A dead peer answered a probe and re-entered the rotation.
    pub const PEER_READMITTED: &str = "peer_readmitted";
    /// A node was admitted into the cluster membership.
    pub const MEMBER_JOINED: &str = "member_joined";
    /// A node left the cluster membership.
    pub const MEMBER_LEFT: &str = "member_left";
    /// The rebalancer assigned a node its searcher-id slice.
    pub const SLICE_REBALANCED: &str = "slice_rebalanced";
    /// A node checkpointed its archive to its ring successor.
    pub const ARCHIVE_REPLICATED: &str = "archive_replicated";
    /// The solver service admitted a job to its queue.
    pub const JOB_ADMITTED: &str = "job_admitted";
    /// The solver service rejected a submission with `QueueFull`.
    pub const JOB_REJECTED: &str = "job_rejected";
    /// A job's run was truncated by an explicit cancel request.
    pub const JOB_CANCELLED: &str = "job_cancelled";
    /// A job's run was truncated by its deadline.
    pub const JOB_DEADLINE_EXCEEDED: &str = "job_deadline_exceeded";
    /// A job reached a terminal state with a result front available.
    pub const JOB_COMPLETED: &str = "job_completed";
    /// A profiling span opened.
    pub const SPAN_ENTER: &str = "span_enter";
    /// A profiling span closed.
    pub const SPAN_EXIT: &str = "span_exit";
    /// Periodic convergence sample of the live archive's front quality.
    pub const FRONT_SAMPLE: &str = "front_sample";
    /// The archive stagnation streak reached the configured limit.
    pub const SEARCH_STAGNATED: &str = "search_stagnated";
    /// A portfolio round finished and a contender was scored.
    pub const ROUND_SCORED: &str = "round_scored";
    /// The portfolio scheduler granted a contender a budget slice.
    pub const BUDGET_REALLOCATED: &str = "budget_reallocated";
    /// A contender pinned at the budget floor was retired.
    pub const CONTENDER_RETIRED: &str = "contender_retired";
}
