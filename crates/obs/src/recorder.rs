//! The `Recorder` trait and its two standard implementations.
//!
//! Emitters hold an `Arc<dyn Recorder>` and call the trait's default-no-op
//! methods unconditionally for metrics; for events they should guard
//! construction with [`Recorder::enabled`] so the no-op recorder costs a
//! single virtual call (and no allocation) on hot paths.

use crate::event::{SearchEvent, TimedEvent};
use crate::metrics::{names, MetricsRegistry};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Sink for search telemetry. All methods default to no-ops so custom
/// recorders implement only what they consume.
pub trait Recorder: Send + Sync {
    /// Whether event recording is on. Emitters skip building
    /// [`SearchEvent`] values entirely when this is `false`.
    fn enabled(&self) -> bool {
        false
    }

    /// Appends a structured event; the recorder assigns the logical
    /// sequence number.
    fn event(&self, _event: SearchEvent) {}

    /// Adds `delta` to a counter.
    fn counter_add(&self, _name: &str, _delta: u64) {}

    /// Sets a gauge.
    fn gauge_set(&self, _name: &str, _value: f64) {}

    /// Raises a gauge to at least `value`.
    fn gauge_max(&self, _name: &str, _value: f64) {}

    /// Records one histogram observation.
    fn observe(&self, _name: &str, _value: f64) {}

    /// Whether span profiling is on. Emitters construct a
    /// [`Span`](crate::Span) — and read the wall clock — only when this
    /// is `true`, so the no-op recorder adds no timing overhead to hot
    /// paths.
    fn profiling(&self) -> bool {
        false
    }

    /// Opens a span and returns its recorder-assigned id (0 from sinks
    /// that don't track spans).
    fn span_start(&self, _name: &'static str, _trace: u64, _parent: u64) -> u64 {
        0
    }

    /// Closes a span. `wall_seconds` feeds the self-profiler and metrics
    /// only — never the event stream — so deterministic streams stay
    /// byte-identical across runs.
    fn span_end(&self, _name: &'static str, _trace: u64, _span: u64, _wall_seconds: f64) {}
}

/// Discards everything. The default recorder: a search run with this sink
/// behaves byte-for-byte like an uninstrumented one.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// A shared handle to the default no-op recorder.
pub fn noop() -> Arc<dyn Recorder> {
    Arc::new(NoopRecorder)
}

/// Aggregated wall-time cost of one span name, folded by the
/// self-profiler as spans close.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStat {
    /// Spans closed under this name.
    pub calls: u64,
    /// Wall seconds summed over those spans.
    pub seconds: f64,
}

struct MemoryState {
    next_seq: u64,
    next_span: u64,
    events: Vec<TimedEvent>,
    metrics: MetricsRegistry,
    profile: BTreeMap<String, SpanStat>,
}

/// In-memory recorder: stamps each event with a logical sequence number
/// and accumulates metrics. Cheap enough for tests and CLI runs; a
/// long-lived process that needs bounded memory should use
/// [`metrics_only`](MemoryRecorder::metrics_only) instead.
pub struct MemoryRecorder {
    record_events: bool,
    record_spans: bool,
    state: Mutex<MemoryState>,
}

impl Default for MemoryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self {
            record_events: true,
            record_spans: false,
            state: Mutex::new(MemoryState {
                next_seq: 0,
                next_span: 1,
                events: Vec::new(),
                metrics: MetricsRegistry::new(),
                profile: BTreeMap::new(),
            }),
        }
    }

    /// Also records span enter/exit markers in the event stream (the
    /// wall-time profile folds either way). Span events are opt-in
    /// because a truncated run closes its root span early, making its
    /// stream "prefix + SpanExit" rather than a byte prefix of the full
    /// run's — code relying on the prefix-determinism contract uses the
    /// default stream, traces and `tail` opt in.
    pub fn with_span_events(mut self) -> Self {
        self.record_spans = true;
        self
    }

    /// A recorder that accumulates metrics but drops events:
    /// [`enabled`](Recorder::enabled) returns `false`, so emitters skip
    /// building events entirely and memory use stays bounded by the metric
    /// name set regardless of run length. This is what a long-running
    /// daemon attaches to every job.
    pub fn metrics_only() -> Self {
        Self {
            record_events: false,
            ..Self::new()
        }
    }

    /// An `Arc`-wrapped recorder ready to hand to a search run.
    pub fn shared() -> Arc<MemoryRecorder> {
        Arc::new(Self::new())
    }

    fn state(&self) -> std::sync::MutexGuard<'_, MemoryState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Copies out the recorded events in sequence order.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.state().events.clone()
    }

    /// Number of recorded events.
    pub fn event_count(&self) -> usize {
        self.state().events.len()
    }

    /// Renders the event stream as JSONL (one event per line, trailing
    /// newline included when non-empty).
    pub fn events_jsonl(&self) -> String {
        let state = self.state();
        let mut out = String::new();
        for ev in &state.events {
            out.push_str(&ev.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Copies out the events with `seq >= from`, for incremental tailing
    /// of a live recorder.
    pub fn events_since(&self, from: u64) -> Vec<TimedEvent> {
        let state = self.state();
        // Sequence numbers are dense and start at 0, so the tail starts
        // at index `from` (clamped).
        let start = (from as usize).min(state.events.len());
        state.events[start..].to_vec()
    }

    /// Snapshot of the folded span profile, by span name. Populated even
    /// by [`metrics_only`](MemoryRecorder::metrics_only) recorders —
    /// profiling costs one map fold per closed span, not per-event
    /// memory.
    pub fn profile(&self) -> BTreeMap<String, SpanStat> {
        self.state().profile.clone()
    }

    /// The span profile as one deterministic JSON document:
    /// `{"spans":{NAME:{"calls":N,"seconds":S},...},"total_seconds":T}`.
    /// `T` is the plain sum of `seconds` over all span names; nested
    /// spans count their own time, so `T` can exceed a run's wall clock.
    pub fn profile_json(&self) -> String {
        let profile = self.profile();
        let mut out = String::from("{\"spans\":{");
        let mut total = 0.0;
        for (i, (name, stat)) in profile.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::write_str(&mut out, name);
            let _ = write!(out, ":{{\"calls\":{},\"seconds\":", stat.calls);
            crate::json::write_f64(&mut out, stat.seconds);
            out.push('}');
            total += stat.seconds;
        }
        out.push_str("},\"total_seconds\":");
        crate::json::write_f64(&mut out, total);
        out.push('}');
        out
    }

    /// Snapshot of the metrics registry, with the span profile folded in
    /// as `tsmo_span_calls_total{span=...}` / `tsmo_span_seconds_total{span=...}`.
    pub fn metrics(&self) -> MetricsRegistry {
        let state = self.state();
        let mut metrics = state.metrics.clone();
        for (name, stat) in &state.profile {
            metrics.counter_add(&names::span_calls(name), stat.calls);
            metrics.gauge_set(&names::span_seconds(name), stat.seconds);
        }
        metrics
    }

    /// Folds another recorder's metrics snapshot (span profile included)
    /// into this one's registry: counters add, gauges max, histograms
    /// add. Events are not copied. A node daemon uses this to publish a
    /// finished job's per-job recorder into its long-lived one.
    pub fn merge_metrics_from(&self, other: &MemoryRecorder) {
        let snapshot = other.metrics();
        self.state().metrics.merge(&snapshot);
    }

    /// Prometheus text exposition of the current metrics.
    pub fn prometheus(&self) -> String {
        self.metrics().to_prometheus()
    }

    /// Human-readable end-of-run summary of the current metrics.
    pub fn summary(&self) -> String {
        self.metrics().summary()
    }
}

impl Recorder for MemoryRecorder {
    fn enabled(&self) -> bool {
        self.record_events
    }

    fn event(&self, event: SearchEvent) {
        if !self.record_events {
            return;
        }
        let mut state = self.state();
        let seq = state.next_seq;
        state.next_seq += 1;
        state.events.push(TimedEvent { seq, event });
    }

    fn counter_add(&self, name: &str, delta: u64) {
        self.state().metrics.counter_add(name, delta);
    }

    fn gauge_set(&self, name: &str, value: f64) {
        self.state().metrics.gauge_set(name, value);
    }

    fn gauge_max(&self, name: &str, value: f64) {
        self.state().metrics.gauge_max(name, value);
    }

    fn observe(&self, name: &str, value: f64) {
        self.state().metrics.observe(name, value);
    }

    fn profiling(&self) -> bool {
        true
    }

    fn span_start(&self, name: &'static str, trace: u64, parent: u64) -> u64 {
        let mut state = self.state();
        let span = state.next_span;
        state.next_span += 1;
        if self.record_events && self.record_spans {
            let seq = state.next_seq;
            state.next_seq += 1;
            state.events.push(TimedEvent {
                seq,
                event: SearchEvent::SpanEnter {
                    trace,
                    span,
                    parent,
                    name: name.to_string(),
                },
            });
        }
        span
    }

    fn span_end(&self, name: &'static str, trace: u64, span: u64, wall_seconds: f64) {
        let mut state = self.state();
        // The profile folds regardless of event recording: metrics-only
        // daemons still get the per-phase wall-time table.
        let stat = state.profile.entry(name.to_string()).or_default();
        stat.calls += 1;
        stat.seconds += wall_seconds;
        if self.record_events && self.record_spans {
            let seq = state.next_seq;
            state.next_seq += 1;
            state.events.push(TimedEvent {
                seq,
                event: SearchEvent::SpanExit {
                    trace,
                    span,
                    name: name.to_string(),
                },
            });
        }
    }
}

/// Wall-clock stopwatch for busy/idle accounting. Times measured with this
/// feed **metrics only** — never events — to keep event streams
/// reproducible.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Self {
            started: Instant::now(),
        }
    }

    /// Seconds since start.
    pub fn seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RestartReason;
    use crate::metrics::names;

    fn sample(iteration: u64) -> SearchEvent {
        SearchEvent::Restart {
            searcher: 0,
            iteration,
            reason: RestartReason::EmptyPool,
        }
    }

    #[test]
    fn noop_recorder_is_disabled_and_silent() {
        let r = noop();
        assert!(!r.enabled());
        r.event(sample(1));
        r.counter_add(names::ITERATIONS, 1);
        r.gauge_set(names::STALENESS_MAX, 1.0);
        r.observe(names::POOL_SIZE, 1.0);
        // Nothing observable: the calls compile to empty default bodies.
    }

    #[test]
    fn memory_recorder_assigns_sequential_logical_clock() {
        let r = MemoryRecorder::new();
        for i in 0..5 {
            r.event(sample(i));
        }
        let events = r.events();
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.event_count(), 5);
    }

    #[test]
    fn jsonl_round_trips_through_parse_helper() {
        let r = MemoryRecorder::new();
        r.event(sample(3));
        r.event(SearchEvent::ArchiveInsert {
            searcher: 1,
            iteration: 4,
            objectives: [100.5, 4.0, 0.0],
        });
        let text = r.events_jsonl();
        let parsed = crate::event::parse_events_jsonl(&text).expect("parse back");
        assert_eq!(parsed, r.events());
    }

    #[test]
    fn metrics_flow_into_exposition() {
        let r = MemoryRecorder::new();
        r.counter_add(names::ITERATIONS, 7);
        r.gauge_max(names::STALENESS_MAX, 2.0);
        r.gauge_max(names::STALENESS_MAX, 5.0);
        r.observe(names::POOL_SIZE, 15.0);
        let prom = r.prometheus();
        assert!(prom.contains("tsmo_iterations_total 7"));
        assert!(prom.contains("tsmo_staleness_max 5"));
        assert!(r.summary().contains("tsmo_iterations_total"));
        assert_eq!(r.metrics().counter(names::ITERATIONS), 7);
    }

    #[test]
    fn metrics_only_drops_events_but_keeps_metrics() {
        let r = MemoryRecorder::metrics_only();
        assert!(!r.enabled());
        r.event(sample(1));
        r.counter_add(names::JOBS_ADMITTED, 2);
        assert_eq!(r.event_count(), 0);
        assert!(r.events_jsonl().is_empty());
        assert_eq!(r.metrics().counter(names::JOBS_ADMITTED), 2);
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let r = MemoryRecorder::shared();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r: Arc<MemoryRecorder> = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        r.counter_add(names::EVALUATIONS, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.metrics().counter(names::EVALUATIONS), 400);
    }

    #[test]
    fn metrics_only_still_folds_the_span_profile() {
        let r = MemoryRecorder::metrics_only();
        let span = r.span_start("evaluate", 9, 0);
        r.span_end("evaluate", 9, span, 0.25);
        r.span_end("evaluate", 9, 0, 0.75);
        assert_eq!(r.event_count(), 0, "no span events without recording");
        let profile = r.profile();
        assert_eq!(profile["evaluate"].calls, 2);
        assert!((profile["evaluate"].seconds - 1.0).abs() < 1e-12);
        let prom = r.prometheus();
        assert!(prom.contains("tsmo_span_calls_total{span=\"evaluate\"} 2"));
        assert!(prom.contains("tsmo_span_seconds_total{span=\"evaluate\"} 1"));
        assert!(r
            .profile_json()
            .contains("\"evaluate\":{\"calls\":2,\"seconds\":1}"));
    }

    #[test]
    fn span_events_share_the_logical_clock() {
        let r = MemoryRecorder::new().with_span_events();
        r.event(sample(1));
        let span = r.span_start("tabu", 5, 0);
        r.span_end("tabu", 5, span, 0.0);
        let seqs: Vec<u64> = r.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(r.events_since(1).len(), 2);
        assert!(r.events_since(99).is_empty());
        let text = r.events_jsonl();
        let parsed = crate::event::parse_events_jsonl(&text).expect("parse back");
        assert_eq!(parsed, r.events());
    }

    #[test]
    fn stopwatch_measures_forward_time() {
        let w = Stopwatch::start();
        assert!(w.seconds() >= 0.0);
    }
}
