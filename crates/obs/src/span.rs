//! Deterministic hierarchical spans.
//!
//! A span is an enter/exit pair in the event stream carrying only logical
//! fields — the run's trace id, a recorder-assigned span id, and the
//! parent span id — so span streams are as reproducible as the rest of
//! the events. Wall time is measured on the emitter side and handed to
//! [`Recorder::span_end`] as an auxiliary value that feeds the
//! self-profiler and metrics only, never the event stream.
//!
//! [`Recorder::span_end`]: crate::Recorder::span_end

use crate::recorder::{Recorder, Stopwatch};
use std::sync::Arc;

/// Derives the per-run trace id from the search seed (SplitMix64
/// finalizer). The result is masked to 48 bits so the id survives the
/// f64-backed JSON layer exactly; a whole distributed run shares the one
/// id derived from its master seed.
pub fn trace_id_from_seed(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) & 0xFFFF_FFFF_FFFF
}

/// RAII span: opens on construction, closes — with its measured wall
/// time — on drop. Construct through [`Span::enter`], which returns
/// `None` when the recorder is not profiling, so the hot path skips even
/// the wall-clock read.
pub struct Span {
    recorder: Arc<dyn Recorder>,
    name: &'static str,
    trace: u64,
    id: u64,
    watch: Stopwatch,
}

impl Span {
    /// Opens a span under `parent` (0 for a root span) when the recorder
    /// is profiling; `None` otherwise.
    pub fn enter(
        recorder: &Arc<dyn Recorder>,
        name: &'static str,
        trace: u64,
        parent: u64,
    ) -> Option<Span> {
        if !recorder.profiling() {
            return None;
        }
        let id = recorder.span_start(name, trace, parent);
        Some(Span {
            recorder: Arc::clone(recorder),
            name,
            trace,
            id,
            watch: Stopwatch::start(),
        })
    }

    /// The recorder-assigned span id — the parent id for child spans.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.recorder
            .span_end(self.name, self.trace, self.id, self.watch.seconds());
    }
}

/// Parent id of an optional span handle (0 when profiling is off).
pub fn span_parent(span: &Option<Span>) -> u64 {
    span.as_ref().map_or(0, Span::id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::MemoryRecorder;
    use crate::SearchEvent;

    #[test]
    fn trace_ids_are_stable_distinct_and_fit_48_bits() {
        assert_eq!(trace_id_from_seed(0), trace_id_from_seed(0));
        assert_ne!(trace_id_from_seed(0), trace_id_from_seed(1));
        for seed in 0..64 {
            assert!(trace_id_from_seed(seed) < (1 << 48));
        }
    }

    #[test]
    fn spans_nest_and_close_in_reverse_order() {
        let memory = Arc::new(MemoryRecorder::new().with_span_events());
        let recorder: Arc<dyn Recorder> = Arc::clone(&memory) as Arc<dyn Recorder>;
        let trace = trace_id_from_seed(7);
        {
            let root = Span::enter(&recorder, "search", trace, 0).expect("profiling on");
            let child = Span::enter(&recorder, "evaluate", trace, root.id());
            drop(child);
        }
        let kinds: Vec<String> = memory
            .events()
            .iter()
            .map(|e| match &e.event {
                SearchEvent::SpanEnter { name, .. } => format!("enter:{name}"),
                SearchEvent::SpanExit { name, .. } => format!("exit:{name}"),
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "enter:search",
                "enter:evaluate",
                "exit:evaluate",
                "exit:search"
            ]
        );
        let profile = memory.profile();
        assert_eq!(profile["search"].calls, 1);
        assert_eq!(profile["evaluate"].calls, 1);
        assert!(profile["search"].seconds >= 0.0);
    }

    #[test]
    fn noop_recorder_skips_span_construction() {
        let recorder = crate::noop();
        assert!(!recorder.profiling());
        assert!(Span::enter(&recorder, "search", 1, 0).is_none());
    }
}
