//! Deterministic best-improvement descent over the full move vocabulary.
//!
//! Unlike the tabu search's *sampled* neighborhoods, this enumerates every
//! structurally valid move of all five operator families and repeatedly
//! applies the best one under a weighted scalarization of the three
//! objectives. It serves two roles in the suite:
//!
//! * a **polisher** for fronts produced by the metaheuristics (the classic
//!   "improvement phase" of routing pipelines), and
//! * a **baseline** local search the ablation harness can compare the tabu
//!   searches against.

use crate::moves::{Move, OperatorKind};
use crate::sample::SampleParams;
use vrptw::solution::EvaluatedSolution;
use vrptw::{Instance, Objectives, Solution};

/// Scalarization and termination knobs for the descent.
#[derive(Debug, Clone, Copy)]
pub struct DescentConfig {
    /// Weights of `(distance, vehicles, tardiness)` in the improvement
    /// criterion. The defaults make a vehicle "worth" a large detour and a
    /// unit of tardiness slightly more than a unit of distance, which
    /// drives solutions toward feasibility first.
    pub weights: [f64; 3],
    /// Upper bound on improving moves applied (safety valve; descent on
    /// benchmark-sized instances converges far earlier).
    pub max_moves: usize,
    /// Apply the sampling layer's local feasibility criterion to candidate
    /// moves (cheap pre-filter; the scalarized evaluation decides anyway).
    pub feasibility_filter: bool,
}

impl Default for DescentConfig {
    fn default() -> Self {
        Self {
            weights: [1.0, 100.0, 10.0],
            max_moves: 10_000,
            feasibility_filter: false,
        }
    }
}

/// The result of a descent run.
#[derive(Debug, Clone)]
pub struct DescentOutcome {
    /// The locally optimal solution.
    pub solution: Solution,
    /// Its objectives.
    pub objectives: Objectives,
    /// Number of improving moves applied.
    pub moves_applied: usize,
}

fn scalar(weights: &[f64; 3], o: Objectives) -> f64 {
    let v = o.to_vector();
    weights[0] * v[0] + weights[1] * v[1] + weights[2] * v[2]
}

/// Runs best-improvement descent from `start` until a local optimum of the
/// enumerated neighborhood (or the move cap) is reached.
pub fn descend(inst: &Instance, start: Solution, cfg: &DescentConfig) -> DescentOutcome {
    let mut current = EvaluatedSolution::new(start, inst);
    let mut moves_applied = 0;
    let params = SampleParams {
        feasibility: cfg.feasibility_filter,
    };
    while moves_applied < cfg.max_moves {
        let base = scalar(&cfg.weights, current.objectives());
        let mut best: Option<(Move, f64)> = None;
        for mv in enumerate_moves(&current) {
            if params.feasibility {
                let feasible = mv
                    .arcs_created(&current)
                    .iter()
                    .all(|&(u, v)| crate::feasibility::arc_feasible(inst, u, v));
                if !feasible {
                    continue;
                }
            }
            let patch = mv.expand(&current);
            let preview = current.preview(inst, &patch);
            if preview.capacity_excess > 0.0 {
                continue;
            }
            let value = scalar(&cfg.weights, preview.objectives);
            if value < base - 1e-9 && best.as_ref().is_none_or(|(_, b)| value < *b) {
                best = Some((mv, value));
            }
        }
        match best {
            Some((mv, _)) => {
                let patch = mv.expand(&current);
                current.apply(inst, patch);
                moves_applied += 1;
            }
            None => break,
        }
    }
    let objectives = current.objectives();
    DescentOutcome {
        solution: current.into_solution(),
        objectives,
        moves_applied,
    }
}

/// Enumerates every structurally valid move of all five families against
/// the snapshot (the deterministic counterpart of random sampling).
pub fn enumerate_moves(snap: &EvaluatedSolution) -> Vec<Move> {
    let n = snap.n_routes();
    let mut out = Vec::new();
    // Relocate + Exchange + 2-opt* need route pairs.
    for a in 0..n {
        let len_a = snap.route(a).len();
        for b in 0..n {
            if a == b {
                continue;
            }
            let len_b = snap.route(b).len();
            for pa in 0..len_a {
                for pb in 0..=len_b {
                    out.push(Move::Relocate {
                        from: (a, pa),
                        to: (b, pb),
                    });
                }
                if a < b {
                    for pb in 0..len_b {
                        out.push(Move::Exchange {
                            a: (a, pa),
                            b: (b, pb),
                        });
                    }
                }
            }
            if a < b {
                for cut_a in 0..=len_a {
                    for cut_b in 0..=len_b {
                        if (cut_a == 0 && cut_b == 0) || (cut_a == len_a && cut_b == len_b) {
                            continue;
                        }
                        out.push(Move::TwoOptStar { a, cut_a, b, cut_b });
                    }
                }
            }
        }
        // Intra-route families.
        for i in 0..len_a.saturating_sub(1) {
            for j in (i + 1)..len_a {
                out.push(Move::TwoOpt { route: a, i, j });
            }
        }
        if len_a >= 3 {
            for from in 0..(len_a - 1) {
                for to in 0..=(len_a - 2) {
                    if to != from {
                        out.push(Move::OrOpt { route: a, from, to });
                    }
                }
            }
        }
    }
    out
}

/// Number of enumerated moves per family, for diagnostics and tests.
pub fn neighborhood_census(snap: &EvaluatedSolution) -> [(OperatorKind, usize); 5] {
    let mut counts = [0usize; 5];
    for mv in enumerate_moves(snap) {
        let idx = OperatorKind::ALL
            .iter()
            .position(|&k| k == mv.kind())
            .expect("known kind");
        counts[idx] += 1;
    }
    [
        (OperatorKind::Relocate, counts[0]),
        (OperatorKind::Exchange, counts[1]),
        (OperatorKind::TwoOpt, counts[2]),
        (OperatorKind::TwoOptStar, counts[3]),
        (OperatorKind::OrOpt, counts[4]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrptw::generator::{GeneratorConfig, InstanceClass};

    fn snapshot(inst: &Instance, routes: Vec<Vec<u16>>) -> EvaluatedSolution {
        EvaluatedSolution::new(Solution::from_routes(routes), inst)
    }

    /// A fleet-respecting start: customers dealt round-robin into k routes.
    fn round_robin(inst: &Instance, k: usize) -> Solution {
        let k = k.clamp(1, inst.max_vehicles());
        let mut routes: Vec<Vec<u16>> = vec![Vec::new(); k];
        for (i, c) in inst.customers().enumerate() {
            routes[i % k].push(c);
        }
        Solution::from_routes(routes)
    }

    #[test]
    fn census_counts_match_combinatorics() {
        let inst = Instance::tiny();
        let snap = snapshot(&inst, vec![vec![1, 2], vec![3, 4]]);
        let census = neighborhood_census(&snap);
        // Relocate: 2 routes × 2 customers × 3 insert slots = 12 (ordered pairs).
        assert_eq!(census[0], (OperatorKind::Relocate, 12));
        // Exchange: 2×2 position pairs for the one unordered route pair.
        assert_eq!(census[1], (OperatorKind::Exchange, 4));
        // TwoOpt: per route C(2,2) = 1 segment each.
        assert_eq!(census[2], (OperatorKind::TwoOpt, 2));
        // TwoOptStar: 3×3 cut pairs − 2 degenerate = 7.
        assert_eq!(census[3], (OperatorKind::TwoOptStar, 7));
        // OrOpt: routes too short.
        assert_eq!(census[4], (OperatorKind::OrOpt, 0));
    }

    #[test]
    fn descent_never_worsens_and_reaches_local_optimum() {
        let inst = GeneratorConfig::new(InstanceClass::R2, 30, 5).build();
        let start = round_robin(&inst, inst.max_vehicles());
        let start_obj = start.evaluate(&inst);
        let cfg = DescentConfig::default();
        let out = descend(&inst, start, &cfg);
        assert!(out.solution.check(&inst).is_empty());
        assert!(scalar(&cfg.weights, out.objectives) <= scalar(&cfg.weights, start_obj) + 1e-9);
        assert!(
            out.moves_applied > 0,
            "the trivial start is certainly improvable"
        );
        // Local optimality: running again applies nothing.
        let again = descend(&inst, out.solution.clone(), &cfg);
        assert_eq!(again.moves_applied, 0);
        assert_eq!(again.solution, out.solution);
    }

    #[test]
    fn descent_reduces_vehicles_with_heavy_vehicle_weight() {
        let inst = GeneratorConfig::new(InstanceClass::C2, 24, 3).build();
        let start = round_robin(&inst, inst.max_vehicles());
        let out = descend(
            &inst,
            start.clone(),
            &DescentConfig {
                weights: [0.001, 1000.0, 1.0],
                ..Default::default()
            },
        );
        assert!(
            out.objectives.vehicles < start.evaluate(&inst).vehicles,
            "vehicle-weighted descent must merge routes"
        );
    }

    #[test]
    fn move_cap_is_respected() {
        let inst = GeneratorConfig::new(InstanceClass::R2, 40, 7).build();
        let start = round_robin(&inst, inst.max_vehicles());
        let out = descend(
            &inst,
            start,
            &DescentConfig {
                max_moves: 3,
                ..Default::default()
            },
        );
        assert_eq!(out.moves_applied, 3);
    }

    #[test]
    fn enumerated_moves_are_all_expandable() {
        let inst = GeneratorConfig::new(InstanceClass::RC1, 15, 2).build();
        let mut routes: Vec<Vec<u16>> = vec![Vec::new(); 3];
        for (i, c) in inst.customers().enumerate() {
            routes[i % 3].push(c);
        }
        let snap = snapshot(&inst, routes);
        for mv in enumerate_moves(&snap) {
            let patch = mv.expand(&snap); // must not panic
            let mut applied = snap.clone();
            applied.apply(&inst, patch);
            assert!(applied.solution().check(&inst).is_empty(), "{mv:?}");
        }
    }
}
