//! The paper's local feasibility criterion (§II.B).
//!
//! Each operator discards moves that would *obviously* violate time windows
//! at the splice points. The criterion only inspects the two endpoints of
//! each newly created arc — it is "weak enough that solutions with time
//! window violations occur and strong enough that the algorithm could find
//! back to a solution with all time windows satisfied".

use vrptw::{Instance, SiteId};

/// Whether the directed arc `u → v` passes the local time-window check:
/// leaving `u` at its earliest possible completion (`a_u + c_u`) must reach
/// `v` no later than `v`'s due date (`b_v`).
///
/// With `v` the depot this checks the route can still make it home; with
/// `u` the depot it checks `v` is reachable from the start of the day.
#[inline]
pub fn arc_feasible(inst: &Instance, u: SiteId, v: SiteId) -> bool {
    let us = inst.site(u);
    let vs = inst.site(v);
    us.ready + us.service + inst.dist(u, v) <= vs.due
}

/// The criterion exactly as the paper words it for Relocate: inserting
/// customer `k` between `i` and `j` is allowed only if neither
/// `a_i + c_i + t_{i,k} > b_k` nor `a_k + c_k + t_{k,j} > b_j` holds.
#[inline]
pub fn insertion_feasible(inst: &Instance, i: SiteId, k: SiteId, j: SiteId) -> bool {
    arc_feasible(inst, i, k) && arc_feasible(inst, k, j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrptw::{Customer, Instance};

    fn line_instance() -> Instance {
        // Depot at 0; customers at x = 10, 20, 30 with varied windows.
        let depot = Customer {
            x: 0.0,
            y: 0.0,
            demand: 0.0,
            ready: 0.0,
            due: 1000.0,
            service: 0.0,
        };
        let c = |x: f64, ready: f64, due: f64| Customer {
            x,
            y: 0.0,
            demand: 1.0,
            ready,
            due,
            service: 5.0,
        };
        Instance::new(
            "line",
            vec![
                depot,
                c(10.0, 0.0, 100.0),
                c(20.0, 50.0, 60.0),
                c(30.0, 0.0, 20.0),
            ],
            10.0,
            3,
        )
    }

    #[test]
    fn arc_from_depot_checks_reachability() {
        let inst = line_instance();
        // Depot -> customer 3: t = 30 > due 20 => infeasible.
        assert!(!arc_feasible(&inst, 0, 3));
        // Depot -> customer 1: t = 10 <= 100 => feasible.
        assert!(arc_feasible(&inst, 0, 1));
    }

    #[test]
    fn arc_between_customers_uses_ready_plus_service() {
        let inst = line_instance();
        // Customer 2 (ready 50, service 5) -> customer 3 (due 20):
        // 50 + 5 + 10 = 65 > 20 => infeasible.
        assert!(!arc_feasible(&inst, 2, 3));
        // Customer 1 (ready 0, service 5) -> customer 2 (due 60):
        // 0 + 5 + 10 = 15 <= 60 => feasible.
        assert!(arc_feasible(&inst, 1, 2));
    }

    #[test]
    fn arc_to_depot_checks_the_way_home() {
        let inst = line_instance();
        assert!(arc_feasible(&inst, 3, 0)); // 0+5+30 <= 1000
    }

    #[test]
    fn insertion_requires_both_arcs() {
        let inst = line_instance();
        // Insert 2 between 1 and 3: 1->2 fine, 2->3 violates.
        assert!(!insertion_feasible(&inst, 1, 2, 3));
        // Insert 1 between depot and 2: both arcs fine.
        assert!(insertion_feasible(&inst, 0, 1, 2));
    }

    #[test]
    fn boundary_case_is_feasible() {
        // Exactly meeting the due date is allowed (<=, not <).
        let depot = Customer {
            x: 0.0,
            y: 0.0,
            demand: 0.0,
            ready: 0.0,
            due: 100.0,
            service: 0.0,
        };
        let c = Customer {
            x: 10.0,
            y: 0.0,
            demand: 1.0,
            ready: 0.0,
            due: 10.0,
            service: 0.0,
        };
        let inst = Instance::new("edge", vec![depot, c], 10.0, 1);
        assert!(arc_feasible(&inst, 0, 1));
    }
}
