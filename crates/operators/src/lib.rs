//! Neighborhood operators for the CVRPTW (§II.B of the paper).
//!
//! Five operators, each given the same chance to create a neighboring
//! solution:
//!
//! * **Relocate** — move a customer from one route to another
//!   (a `(1, 0)` λ-exchange in Osman's terminology);
//! * **Exchange** — swap two customers of different routes (`(1, 1)`);
//! * **2-opt** — reverse a tour or part of it;
//! * **2-opt\*** — cross two tours, exchanging their tails;
//! * **Or-opt** — move two consecutive customers to a different place in
//!   the same tour.
//!
//! Every operator applies the paper's *local feasibility criterion*: a move
//! is discarded when it would obviously violate a time window at the splice
//! points (e.g. inserting `k` between `i` and `j` is rejected when
//! `a_i + c_i + t_{i,k} > b_k` or `a_k + c_k + t_{k,j} > b_j`) or when it
//! would exceed the vehicle capacity. The criterion is deliberately weak —
//! solutions with time-window violations still occur (soft windows!) — but
//! strong enough that the search can return to fully feasible solutions.
//!
//! Moves are plain data ([`Move`]); [`Move::expand`] turns a move into a
//! [`RoutePatch`](vrptw::solution::RoutePatch) against the snapshot it was
//! sampled from, and [`Move::arcs_created`]/[`Move::arcs_removed`] expose
//! the arc attributes the tabu list is built on.

pub mod descent;
mod feasibility;
mod moves;
mod sample;

pub use descent::{descend, DescentConfig, DescentOutcome};
pub use feasibility::{arc_feasible, insertion_feasible};
pub use moves::{Arc, Move, OperatorKind};
pub use sample::{
    sample_move, sample_move_tallied, sample_of_kind, Candidate, SampleParams, SampleTally,
};

#[cfg(test)]
mod proptests;
