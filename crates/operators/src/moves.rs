//! The move vocabulary: plain-data descriptions of route edits.

use vrptw::solution::{EvaluatedSolution, RoutePatch};
use vrptw::{SiteId, DEPOT};

/// A directed arc of the giant tour; `0` is the depot. Arcs are the
/// attributes stored in the tabu list: a move is tabu when it re-creates an
/// arc that a recent move removed (it would start undoing that move).
pub type Arc = (SiteId, SiteId);

/// The five operator families of §II.B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorKind {
    /// Move one customer to another route.
    Relocate,
    /// Swap two customers of different routes.
    Exchange,
    /// Reverse part of one tour.
    TwoOpt,
    /// Exchange the tails of two tours.
    TwoOptStar,
    /// Move two consecutive customers within their tour.
    OrOpt,
}

impl OperatorKind {
    /// All five operators, in the paper's order.
    pub const ALL: [OperatorKind; 5] = [
        OperatorKind::Relocate,
        OperatorKind::Exchange,
        OperatorKind::TwoOpt,
        OperatorKind::TwoOptStar,
        OperatorKind::OrOpt,
    ];

    /// This operator's position in [`OperatorKind::ALL`] — the index
    /// used by per-operator attribution arrays.
    pub fn index(self) -> usize {
        match self {
            OperatorKind::Relocate => 0,
            OperatorKind::Exchange => 1,
            OperatorKind::TwoOpt => 2,
            OperatorKind::TwoOptStar => 3,
            OperatorKind::OrOpt => 4,
        }
    }

    /// Stable snake_case label used as the `operator` metric label.
    pub fn label(self) -> &'static str {
        match self {
            OperatorKind::Relocate => "relocate",
            OperatorKind::Exchange => "exchange",
            OperatorKind::TwoOpt => "two_opt",
            OperatorKind::TwoOptStar => "two_opt_star",
            OperatorKind::OrOpt => "or_opt",
        }
    }
}

/// A sampled neighborhood move, expressed against a specific solution
/// snapshot (the route indices and positions refer to that snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Move {
    /// Remove the customer at `from.1` in route `from.0` and insert it at
    /// position `to.1` of route `to.0` (≠ `from.0`); the insertion position
    /// is an index into the *unmodified* target route (`0..=len`).
    Relocate {
        /// `(route, position)` of the customer being moved.
        from: (usize, usize),
        /// `(route, insertion index)` in the target route.
        to: (usize, usize),
    },
    /// Swap the customers at the two `(route, position)` slots (different
    /// routes).
    Exchange {
        /// First slot.
        a: (usize, usize),
        /// Second slot.
        b: (usize, usize),
    },
    /// Reverse positions `i..=j` (inclusive, `i < j`) of `route`.
    TwoOpt {
        /// Route index.
        route: usize,
        /// First position of the reversed segment.
        i: usize,
        /// Last position of the reversed segment.
        j: usize,
    },
    /// Cross routes `a` and `b`: the new `a` keeps its first `cut_a`
    /// customers and receives `b`'s tail from `cut_b`, and vice versa.
    TwoOptStar {
        /// First route index.
        a: usize,
        /// Number of customers route `a` keeps.
        cut_a: usize,
        /// Second route index.
        b: usize,
        /// Number of customers route `b` keeps.
        cut_b: usize,
    },
    /// Move the pair at positions `(from, from+1)` of `route` so that it
    /// starts at position `to` of the route with the pair removed
    /// (`to != from`, `to <= len-2`).
    OrOpt {
        /// Route index.
        route: usize,
        /// Position of the first customer of the pair.
        from: usize,
        /// Insertion position in the pair-less route.
        to: usize,
    },
}

impl Move {
    /// The operator family this move belongs to.
    pub fn kind(&self) -> OperatorKind {
        match self {
            Move::Relocate { .. } => OperatorKind::Relocate,
            Move::Exchange { .. } => OperatorKind::Exchange,
            Move::TwoOpt { .. } => OperatorKind::TwoOpt,
            Move::TwoOptStar { .. } => OperatorKind::TwoOptStar,
            Move::OrOpt { .. } => OperatorKind::OrOpt,
        }
    }

    /// Builds the route patch this move performs on `snapshot`.
    ///
    /// # Panics
    /// Panics if the move's indices do not fit the snapshot (moves must be
    /// expanded against the same snapshot they were sampled from).
    pub fn expand(&self, snapshot: &EvaluatedSolution) -> RoutePatch {
        match *self {
            Move::Relocate { from, to } => {
                let (fr, fp) = from;
                let (tr, tp) = to;
                assert_ne!(fr, tr, "relocate requires distinct routes");
                let mut from_route = snapshot.route(fr).to_vec();
                let customer = from_route.remove(fp);
                let mut to_route = snapshot.route(tr).to_vec();
                to_route.insert(tp, customer);
                RoutePatch {
                    replace: vec![(fr, from_route), (tr, to_route)],
                    append: vec![],
                }
            }
            Move::Exchange { a, b } => {
                let (ra, pa) = a;
                let (rb, pb) = b;
                assert_ne!(ra, rb, "exchange requires distinct routes");
                let mut route_a = snapshot.route(ra).to_vec();
                let mut route_b = snapshot.route(rb).to_vec();
                std::mem::swap(&mut route_a[pa], &mut route_b[pb]);
                RoutePatch {
                    replace: vec![(ra, route_a), (rb, route_b)],
                    append: vec![],
                }
            }
            Move::TwoOpt { route, i, j } => {
                let mut r = snapshot.route(route).to_vec();
                assert!(i < j && j < r.len(), "invalid 2-opt segment");
                r[i..=j].reverse();
                RoutePatch {
                    replace: vec![(route, r)],
                    append: vec![],
                }
            }
            Move::TwoOptStar { a, cut_a, b, cut_b } => {
                assert_ne!(a, b, "2-opt* requires distinct routes");
                let ra = snapshot.route(a);
                let rb = snapshot.route(b);
                let mut new_a = ra[..cut_a].to_vec();
                new_a.extend_from_slice(&rb[cut_b..]);
                let mut new_b = rb[..cut_b].to_vec();
                new_b.extend_from_slice(&ra[cut_a..]);
                RoutePatch {
                    replace: vec![(a, new_a), (b, new_b)],
                    append: vec![],
                }
            }
            Move::OrOpt { route, from, to } => {
                let mut r = snapshot.route(route).to_vec();
                assert!(from + 1 < r.len(), "or-opt pair out of range");
                let second = r.remove(from + 1);
                let first = r.remove(from);
                assert!(to <= r.len() && to != from, "invalid or-opt target");
                r.insert(to, first);
                r.insert(to + 1, second);
                RoutePatch {
                    replace: vec![(route, r)],
                    append: vec![],
                }
            }
        }
    }

    /// The arcs this move removes from the solution (tabu attributes).
    pub fn arcs_removed(&self, snapshot: &EvaluatedSolution) -> Vec<Arc> {
        self.arc_delta(snapshot).0
    }

    /// The arcs this move creates (checked against the tabu list).
    pub fn arcs_created(&self, snapshot: &EvaluatedSolution) -> Vec<Arc> {
        self.arc_delta(snapshot).1
    }

    /// `(removed, created)` arcs, computed by diffing the arc multisets of
    /// the touched routes before and after the patch.
    ///
    /// Computing the delta by diffing (rather than per-operator case
    /// analysis) keeps the attribute definition trivially consistent with
    /// `expand`, at a cost proportional to the touched routes only.
    pub fn arc_delta(&self, snapshot: &EvaluatedSolution) -> (Vec<Arc>, Vec<Arc>) {
        let patch = self.expand(snapshot);
        let mut before: Vec<Arc> = Vec::new();
        let mut after: Vec<Arc> = Vec::new();
        for (idx, new_route) in &patch.replace {
            collect_arcs(snapshot.route(*idx), &mut before);
            collect_arcs(new_route, &mut after);
        }
        for new_route in &patch.append {
            collect_arcs(new_route, &mut after);
        }
        // removed = before \ after, created = after \ before (multiset diff).
        let removed = multiset_minus(&before, &after);
        let created = multiset_minus(&after, &before);
        (removed, created)
    }
}

/// Appends the depot-to-depot arc sequence of a route to `out`.
fn collect_arcs(route: &[SiteId], out: &mut Vec<Arc>) {
    if route.is_empty() {
        return;
    }
    out.push((DEPOT, route[0]));
    for w in route.windows(2) {
        out.push((w[0], w[1]));
    }
    out.push((route[route.len() - 1], DEPOT));
}

/// Multiset difference `a \ b`.
fn multiset_minus(a: &[Arc], b: &[Arc]) -> Vec<Arc> {
    let mut remaining: Vec<Arc> = b.to_vec();
    let mut out = Vec::new();
    for &arc in a {
        if let Some(pos) = remaining.iter().position(|&x| x == arc) {
            remaining.swap_remove(pos);
        } else {
            out.push(arc);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrptw::{Instance, Solution};

    fn snapshot(routes: Vec<Vec<SiteId>>) -> (Instance, EvaluatedSolution) {
        let inst = Instance::tiny();
        let ev = EvaluatedSolution::new(Solution::from_routes(routes), &inst);
        (inst, ev)
    }

    #[test]
    fn relocate_expands_correctly() {
        let (inst, ev) = snapshot(vec![vec![1, 2], vec![3, 4]]);
        let mv = Move::Relocate {
            from: (0, 1),
            to: (1, 0),
        };
        let patch = mv.expand(&ev);
        assert_eq!(patch.replace, vec![(0, vec![1]), (1, vec![2, 3, 4])]);
        let mut applied = ev.clone();
        applied.apply(&inst, patch);
        assert!(applied.solution().check(&inst).is_empty());
    }

    #[test]
    fn relocate_can_empty_a_route() {
        let (inst, ev) = snapshot(vec![vec![1], vec![2, 3, 4]]);
        let mv = Move::Relocate {
            from: (0, 0),
            to: (1, 3),
        };
        let mut applied = ev.clone();
        applied.apply(&inst, mv.expand(&ev));
        assert_eq!(applied.n_routes(), 1);
        assert_eq!(applied.route(0), &[2, 3, 4, 1]);
    }

    #[test]
    fn exchange_expands_correctly() {
        let (_, ev) = snapshot(vec![vec![1, 2], vec![3, 4]]);
        let mv = Move::Exchange {
            a: (0, 0),
            b: (1, 1),
        };
        let patch = mv.expand(&ev);
        assert_eq!(patch.replace, vec![(0, vec![4, 2]), (1, vec![3, 1])]);
    }

    #[test]
    fn two_opt_reverses_segment() {
        let (_, ev) = snapshot(vec![vec![1, 2, 3, 4]]);
        let mv = Move::TwoOpt {
            route: 0,
            i: 1,
            j: 3,
        };
        let patch = mv.expand(&ev);
        assert_eq!(patch.replace, vec![(0, vec![1, 4, 3, 2])]);
    }

    #[test]
    fn two_opt_star_swaps_tails() {
        let (_, ev) = snapshot(vec![vec![1, 2], vec![3, 4]]);
        let mv = Move::TwoOptStar {
            a: 0,
            cut_a: 1,
            b: 1,
            cut_b: 1,
        };
        let patch = mv.expand(&ev);
        assert_eq!(patch.replace, vec![(0, vec![1, 4]), (1, vec![3, 2])]);
    }

    #[test]
    fn two_opt_star_with_empty_tail_moves_suffix() {
        let (_, ev) = snapshot(vec![vec![1, 2, 3], vec![4]]);
        // a keeps 3 (empty tail added from b after cut 1 => nothing),
        // b keeps 1 and receives nothing… choose cuts that move 3 to b.
        let mv = Move::TwoOptStar {
            a: 0,
            cut_a: 2,
            b: 1,
            cut_b: 1,
        };
        let patch = mv.expand(&ev);
        assert_eq!(patch.replace, vec![(0, vec![1, 2]), (1, vec![4, 3])]);
    }

    #[test]
    fn or_opt_moves_pair_within_route() {
        let (_, ev) = snapshot(vec![vec![1, 2, 3, 4]]);
        let mv = Move::OrOpt {
            route: 0,
            from: 0,
            to: 2,
        };
        let patch = mv.expand(&ev);
        assert_eq!(patch.replace, vec![(0, vec![3, 4, 1, 2])]);
    }

    #[test]
    fn or_opt_backward_move() {
        let (_, ev) = snapshot(vec![vec![1, 2, 3, 4]]);
        let mv = Move::OrOpt {
            route: 0,
            from: 2,
            to: 0,
        };
        let patch = mv.expand(&ev);
        assert_eq!(patch.replace, vec![(0, vec![3, 4, 1, 2])]);
    }

    #[test]
    fn arc_delta_for_relocate() {
        let (_, ev) = snapshot(vec![vec![1, 2], vec![3, 4]]);
        let mv = Move::Relocate {
            from: (0, 0),
            to: (1, 1),
        };
        let (removed, created) = mv.arc_delta(&ev);
        // Before: 0-1,1-2,2-0 / 0-3,3-4,4-0  After: 0-2,2-0? no: route0=[2]
        // => 0-2,2-0 ; route1=[3,1,4] => 0-3,3-1,1-4,4-0.
        let rm: std::collections::HashSet<Arc> = removed.into_iter().collect();
        let cr: std::collections::HashSet<Arc> = created.into_iter().collect();
        assert_eq!(rm, [(0, 1), (1, 2), (3, 4)].into_iter().collect());
        assert_eq!(cr, [(0, 2), (3, 1), (1, 4)].into_iter().collect());
    }

    #[test]
    fn arc_delta_for_two_opt_ignores_unchanged_arcs() {
        let (_, ev) = snapshot(vec![vec![1, 2, 3, 4]]);
        let mv = Move::TwoOpt {
            route: 0,
            i: 1,
            j: 2,
        };
        let (removed, created) = mv.arc_delta(&ev);
        // 1-2,2-3,3-4 -> 1-3,3-2,2-4.
        let rm: std::collections::HashSet<Arc> = removed.into_iter().collect();
        let cr: std::collections::HashSet<Arc> = created.into_iter().collect();
        assert_eq!(rm, [(1, 2), (2, 3), (3, 4)].into_iter().collect());
        assert_eq!(cr, [(1, 3), (3, 2), (2, 4)].into_iter().collect());
    }

    #[test]
    fn identity_like_moves_have_empty_delta() {
        let (_, ev) = snapshot(vec![vec![1, 2], vec![3, 4]]);
        // Whole-route swap via 2-opt*: relabeling only.
        let mv = Move::TwoOptStar {
            a: 0,
            cut_a: 0,
            b: 1,
            cut_b: 0,
        };
        let (removed, created) = mv.arc_delta(&ev);
        assert!(removed.is_empty());
        assert!(created.is_empty());
    }

    #[test]
    #[should_panic]
    fn relocate_same_route_panics() {
        let (_, ev) = snapshot(vec![vec![1, 2], vec![3, 4]]);
        Move::Relocate {
            from: (0, 0),
            to: (0, 1),
        }
        .expand(&ev);
    }

    #[test]
    fn kinds_are_reported() {
        assert_eq!(
            Move::TwoOpt {
                route: 0,
                i: 0,
                j: 1
            }
            .kind(),
            OperatorKind::TwoOpt
        );
        assert_eq!(OperatorKind::ALL.len(), 5);
    }
}
