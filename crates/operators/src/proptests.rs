//! Property-based tests over randomly generated instances and solutions:
//! the operator layer must never break the permutation invariant, and the
//! incremental preview must always agree with a from-scratch evaluation.

use crate::sample::{sample_move, SampleParams};
use detrand::{Rng, Xoshiro256StarStar};
use proptest::prelude::*;
use vrptw::generator::{GeneratorConfig, InstanceClass};
use vrptw::solution::EvaluatedSolution;
use vrptw::{Instance, Solution};

/// Builds a random (structurally valid) solution by dealing customers into
/// `k` routes in shuffled order.
fn random_solution(inst: &Instance, k: usize, seed: u64) -> Solution {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut customers: Vec<u16> = inst.customers().collect();
    rng.shuffle(&mut customers);
    let k = k.clamp(1, inst.max_vehicles());
    let mut routes: Vec<Vec<u16>> = vec![Vec::new(); k];
    for (i, c) in customers.into_iter().enumerate() {
        routes[i % k].push(c);
    }
    Solution::from_routes(routes)
}

fn class_from(idx: u8) -> InstanceClass {
    InstanceClass::ALL[idx as usize % InstanceClass::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any chain of sampled moves preserves the permutation invariant.
    #[test]
    fn move_chains_preserve_permutation(
        class_idx in 0u8..6,
        n in 8usize..40,
        k in 2usize..6,
        seed in 0u64..1_000,
        chain_len in 1usize..30,
    ) {
        let inst = GeneratorConfig::new(class_from(class_idx), n, seed).build();
        let sol = random_solution(&inst, k, seed ^ 0xABCD);
        prop_assert!(sol.check(&inst).is_empty());
        let mut ev = EvaluatedSolution::new(sol, &inst);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed.wrapping_add(17));
        let mut applied = 0;
        let mut attempts = 0;
        while applied < chain_len && attempts < chain_len * 50 {
            attempts += 1;
            if let Some(c) = sample_move(&mut rng, &inst, &ev, SampleParams::default()) {
                ev.apply(&inst, c.patch);
                applied += 1;
                prop_assert!(ev.solution().check(&inst).is_empty());
            }
        }
    }

    /// The incremental preview of every sampled candidate equals a full
    /// re-evaluation of the patched solution.
    #[test]
    fn preview_agrees_with_full_evaluation(
        class_idx in 0u8..6,
        n in 8usize..40,
        k in 2usize..6,
        seed in 0u64..1_000,
    ) {
        let inst = GeneratorConfig::new(class_from(class_idx), n, seed).build();
        let sol = random_solution(&inst, k, seed ^ 0x1234);
        let ev = EvaluatedSolution::new(sol, &inst);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed.wrapping_add(99));
        for _ in 0..40 {
            if let Some(c) = sample_move(&mut rng, &inst, &ev, SampleParams::default()) {
                let mut applied = ev.clone();
                applied.apply(&inst, c.patch.clone());
                let full = applied.solution().evaluate(&inst);
                prop_assert!((c.preview.objectives.distance - full.distance).abs() < 1e-6,
                    "distance mismatch for {:?}", c.mv);
                prop_assert_eq!(c.preview.objectives.vehicles, full.vehicles);
                prop_assert!((c.preview.objectives.tardiness - full.tardiness).abs() < 1e-6,
                    "tardiness mismatch for {:?}", c.mv);
            }
        }
    }

    /// Applying a move and then checking arc bookkeeping: every arc the move
    /// reports as created is present afterwards, every arc reported removed
    /// is gone (as a multiset over the touched routes).
    #[test]
    fn arc_delta_is_consistent_with_application(
        n in 8usize..30,
        k in 2usize..5,
        seed in 0u64..500,
    ) {
        let inst = GeneratorConfig::new(InstanceClass::R2, n, seed).build();
        let sol = random_solution(&inst, k, seed ^ 0x77);
        let ev = EvaluatedSolution::new(sol, &inst);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed.wrapping_add(5));
        for _ in 0..20 {
            if let Some(c) = sample_move(&mut rng, &inst, &ev, SampleParams::default()) {
                let created = c.mv.arcs_created(&ev);
                let removed = c.mv.arcs_removed(&ev);
                // No arc may appear on both sides.
                for arc in &created {
                    prop_assert!(!removed.contains(arc),
                        "arc {:?} both created and removed by {:?}", arc, c.mv);
                }
                let mut applied = ev.clone();
                applied.apply(&inst, c.patch.clone());
                let all_arcs = |e: &EvaluatedSolution| -> Vec<(u16, u16)> {
                    let mut arcs = Vec::new();
                    for i in 0..e.n_routes() {
                        let r = e.route(i);
                        arcs.push((0, r[0]));
                        for w in r.windows(2) { arcs.push((w[0], w[1])); }
                        arcs.push((r[r.len()-1], 0));
                    }
                    arcs
                };
                let after = all_arcs(&applied);
                for arc in &created {
                    prop_assert!(after.contains(arc),
                        "created arc {:?} missing after {:?}", arc, c.mv);
                }
                let before = all_arcs(&ev);
                for arc in &removed {
                    prop_assert!(before.contains(arc));
                }
            }
        }
    }

    /// Round-trip: every reachable solution encodes to a giant tour of
    /// length N+R+1 and decodes back to itself.
    #[test]
    fn giant_tour_roundtrip_over_random_solutions(
        class_idx in 0u8..6,
        n in 5usize..50,
        k in 1usize..8,
        seed in 0u64..1_000,
    ) {
        let inst = GeneratorConfig::new(class_from(class_idx), n, seed).build();
        let sol = random_solution(&inst, k, seed);
        let tour = sol.giant_tour(&inst);
        prop_assert_eq!(tour.len(), inst.n_customers() + inst.max_vehicles() + 1);
        let back = Solution::from_giant_tour(&inst, &tour).unwrap();
        prop_assert_eq!(back, sol);
    }
}
