//! Random sampling of candidate moves, one draw per call.
//!
//! The paper's neighborhood generation "draws a number of moves … from the
//! five operators": for each move an operator is chosen at random with
//! equal probability, and "if the operator was unable to find a suitable
//! move, with regard to the local feasibility criterion, a new random
//! number is drawn and possibly a different operator is selected". The
//! retry loop lives with the caller (the neighborhood builder in
//! `tsmo-core`); this module implements the single attempt.

use crate::feasibility::arc_feasible;
use crate::moves::{Move, OperatorKind};
use detrand::Rng;
use vrptw::solution::{EvaluatedSolution, Preview, RoutePatch};
use vrptw::Instance;

/// Sampling policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct SampleParams {
    /// Apply the local feasibility criterion (the paper's default). The
    /// ablation harness switches this off to measure the criterion's value.
    pub feasibility: bool,
}

impl Default for SampleParams {
    fn default() -> Self {
        Self { feasibility: true }
    }
}

/// A sampled move together with its expansion and evaluation — everything
/// the tabu search needs to treat it as a neighbor.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The move itself (tabu attributes come from here).
    pub mv: Move,
    /// Its route patch against the snapshot it was sampled from.
    pub patch: RoutePatch,
    /// The objectives of the patched solution.
    pub preview: Preview,
}

/// Per-operator draw/success counts from a sampling run. Indexed by
/// [`OperatorKind::index`]; merged across chunks and runs by addition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SampleTally {
    /// Draws handed to each operator (before any feasibility filter).
    pub proposed: [u64; OperatorKind::ALL.len()],
    /// Draws that produced a structurally valid, feasible candidate.
    pub feasible: [u64; OperatorKind::ALL.len()],
}

impl SampleTally {
    /// Adds another tally into this one element-wise.
    pub fn merge(&mut self, other: &SampleTally) {
        for (a, b) in self.proposed.iter_mut().zip(other.proposed.iter()) {
            *a += b;
        }
        for (a, b) in self.feasible.iter_mut().zip(other.feasible.iter()) {
            *a += b;
        }
    }

    /// Total draws across all operators.
    pub fn total_proposed(&self) -> u64 {
        self.proposed.iter().sum()
    }
}

/// Draws one operator uniformly at random and attempts to sample a move
/// with it. Returns `None` when the chosen operator could not produce a
/// suitable move for this snapshot (caller re-draws).
pub fn sample_move<R: Rng>(
    rng: &mut R,
    inst: &Instance,
    snapshot: &EvaluatedSolution,
    params: SampleParams,
) -> Option<Candidate> {
    let kind = OperatorKind::ALL[rng.index(OperatorKind::ALL.len())];
    sample_of_kind(rng, inst, snapshot, kind, params)
}

/// [`sample_move`] with per-operator attribution: counts the drawn
/// operator in `tally.proposed` and, on success, in `tally.feasible`.
/// Consumes exactly the same RNG sequence as `sample_move`, so
/// instrumented and uninstrumented runs stay trajectory-identical.
pub fn sample_move_tallied<R: Rng>(
    rng: &mut R,
    inst: &Instance,
    snapshot: &EvaluatedSolution,
    params: SampleParams,
    tally: &mut SampleTally,
) -> Option<Candidate> {
    let kind = OperatorKind::ALL[rng.index(OperatorKind::ALL.len())];
    tally.proposed[kind.index()] += 1;
    let candidate = sample_of_kind(rng, inst, snapshot, kind, params);
    if candidate.is_some() {
        tally.feasible[kind.index()] += 1;
    }
    candidate
}

/// Attempts to sample a move of a specific operator family.
///
/// A `Some` result is structurally valid, non-identity, and (when
/// `params.feasibility` is set) passes the local feasibility criterion:
/// every newly created arc satisfies [`arc_feasible`] and no touched route
/// exceeds the vehicle capacity.
pub fn sample_of_kind<R: Rng>(
    rng: &mut R,
    inst: &Instance,
    snapshot: &EvaluatedSolution,
    kind: OperatorKind,
    params: SampleParams,
) -> Option<Candidate> {
    let mv = match kind {
        OperatorKind::Relocate => sample_relocate(rng, snapshot)?,
        OperatorKind::Exchange => sample_exchange(rng, snapshot)?,
        OperatorKind::TwoOpt => sample_two_opt(rng, snapshot)?,
        OperatorKind::TwoOptStar => sample_two_opt_star(rng, snapshot)?,
        OperatorKind::OrOpt => sample_or_opt(rng, snapshot)?,
    };
    finish(inst, snapshot, mv, params)
}

/// Expands and evaluates `mv`, applying the feasibility filter.
fn finish(
    inst: &Instance,
    snapshot: &EvaluatedSolution,
    mv: Move,
    params: SampleParams,
) -> Option<Candidate> {
    if params.feasibility {
        for (u, v) in mv.arcs_created(snapshot) {
            if !arc_feasible(inst, u, v) {
                return None;
            }
        }
    }
    let patch = mv.expand(snapshot);
    let preview = snapshot.preview(inst, &patch);
    // Capacity is a hard constraint by operator design (§II.A: "because of
    // the design of the operators, this violation could not occur").
    if preview.capacity_excess > 0.0 {
        return None;
    }
    Some(Candidate { mv, patch, preview })
}

fn sample_relocate<R: Rng>(rng: &mut R, snap: &EvaluatedSolution) -> Option<Move> {
    let n = snap.n_routes();
    if n < 2 {
        return None;
    }
    let from_route = rng.index(n);
    let mut to_route = rng.index(n - 1);
    if to_route >= from_route {
        to_route += 1;
    }
    let from_pos = rng.index(snap.route(from_route).len());
    let to_pos = rng.index(snap.route(to_route).len() + 1);
    Some(Move::Relocate {
        from: (from_route, from_pos),
        to: (to_route, to_pos),
    })
}

fn sample_exchange<R: Rng>(rng: &mut R, snap: &EvaluatedSolution) -> Option<Move> {
    let n = snap.n_routes();
    if n < 2 {
        return None;
    }
    let ra = rng.index(n);
    let mut rb = rng.index(n - 1);
    if rb >= ra {
        rb += 1;
    }
    let pa = rng.index(snap.route(ra).len());
    let pb = rng.index(snap.route(rb).len());
    Some(Move::Exchange {
        a: (ra, pa),
        b: (rb, pb),
    })
}

fn sample_two_opt<R: Rng>(rng: &mut R, snap: &EvaluatedSolution) -> Option<Move> {
    let n = snap.n_routes();
    let route = rng.index(n);
    let len = snap.route(route).len();
    if len < 2 {
        return None;
    }
    let i = rng.index(len - 1);
    let j = rng.range_u64(i as u64 + 1, len as u64) as usize;
    Some(Move::TwoOpt { route, i, j })
}

fn sample_two_opt_star<R: Rng>(rng: &mut R, snap: &EvaluatedSolution) -> Option<Move> {
    let n = snap.n_routes();
    if n < 2 {
        return None;
    }
    let a = rng.index(n);
    let mut b = rng.index(n - 1);
    if b >= a {
        b += 1;
    }
    let len_a = snap.route(a).len();
    let len_b = snap.route(b).len();
    let cut_a = rng.index(len_a + 1);
    let cut_b = rng.index(len_b + 1);
    // Reject relabelings: swapping both full routes or both empty tails.
    if (cut_a == 0 && cut_b == 0) || (cut_a == len_a && cut_b == len_b) {
        return None;
    }
    Some(Move::TwoOptStar { a, cut_a, b, cut_b })
}

fn sample_or_opt<R: Rng>(rng: &mut R, snap: &EvaluatedSolution) -> Option<Move> {
    let n = snap.n_routes();
    let route = rng.index(n);
    let len = snap.route(route).len();
    if len < 3 {
        return None;
    }
    let from = rng.index(len - 1);
    let to = rng.index(len - 2);
    // `to` indexes the route with the pair removed; skip the identity slot.
    let to = if to >= from { to + 1 } else { to };
    if to > len - 2 {
        return None;
    }
    Some(Move::OrOpt { route, from, to })
}

#[cfg(test)]
mod tests {
    use super::*;
    use detrand::Xoshiro256StarStar;
    use vrptw::{Instance, Solution};

    fn setup(routes: Vec<Vec<u16>>) -> (Instance, EvaluatedSolution) {
        let inst = Instance::tiny();
        let ev = EvaluatedSolution::new(Solution::from_routes(routes), &inst);
        (inst, ev)
    }

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(7)
    }

    #[test]
    fn sampled_candidates_keep_permutation_invariant() {
        let (inst, ev) = setup(vec![vec![1, 2], vec![3, 4]]);
        let mut r = rng();
        let mut produced = 0;
        for _ in 0..500 {
            if let Some(c) = sample_move(&mut r, &inst, &ev, SampleParams::default()) {
                produced += 1;
                let mut applied = ev.clone();
                applied.apply(&inst, c.patch.clone());
                assert!(
                    applied.solution().check(&inst).is_empty(),
                    "move {:?} broke the permutation",
                    c.mv
                );
            }
        }
        // OrOpt can never fire (routes too short) and Relocate is mostly
        // capacity-blocked on this tight instance, so well under half of
        // the draws succeed — but a healthy fraction must.
        assert!(
            produced > 100,
            "expected a healthy success rate, got {produced}"
        );
    }

    #[test]
    fn preview_matches_full_evaluation_for_samples() {
        let (inst, ev) = setup(vec![vec![1, 2], vec![3, 4]]);
        let mut r = rng();
        for _ in 0..200 {
            if let Some(c) = sample_move(&mut r, &inst, &ev, SampleParams::default()) {
                let mut applied = ev.clone();
                applied.apply(&inst, c.patch.clone());
                let full = applied.solution().evaluate(&inst);
                assert!((c.preview.objectives.distance - full.distance).abs() < 1e-9);
                assert_eq!(c.preview.objectives.vehicles, full.vehicles);
                assert!((c.preview.objectives.tardiness - full.tardiness).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn all_operator_kinds_can_fire() {
        // A roomier variant of `tiny` (capacity 20) so that three-customer
        // routes are capacity-feasible and every operator has valid moves.
        let mk = |x: f64, y: f64| vrptw::Customer {
            x,
            y,
            demand: 4.0,
            ready: 0.0,
            due: 100.0,
            service: 1.0,
        };
        let depot = vrptw::Customer {
            x: 0.0,
            y: 0.0,
            demand: 0.0,
            ready: 0.0,
            due: 1000.0,
            service: 0.0,
        };
        let inst = Instance::new(
            "roomy",
            vec![
                depot,
                mk(10.0, 0.0),
                mk(0.0, 10.0),
                mk(-10.0, 0.0),
                mk(0.0, -10.0),
            ],
            20.0,
            3,
        );
        let ev = EvaluatedSolution::new(Solution::from_routes(vec![vec![1, 2, 3], vec![4]]), &inst);
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            if let Some(c) = sample_move(&mut r, &inst, &ev, SampleParams::default()) {
                seen.insert(c.mv.kind());
            }
        }
        for kind in OperatorKind::ALL {
            assert!(seen.contains(&kind), "{kind:?} never produced a move");
        }
    }

    #[test]
    fn tallied_sampler_matches_plain_sampler_and_counts() {
        let (inst, ev) = setup(vec![vec![1, 2], vec![3, 4]]);
        let mut plain_rng = rng();
        let mut tallied_rng = rng();
        let mut tally = SampleTally::default();
        let mut successes = 0u64;
        for _ in 0..500 {
            let plain = sample_move(&mut plain_rng, &inst, &ev, SampleParams::default());
            let tallied = sample_move_tallied(
                &mut tallied_rng,
                &inst,
                &ev,
                SampleParams::default(),
                &mut tally,
            );
            // Identical RNG consumption ⇒ identical draws, forever.
            assert_eq!(plain.as_ref().map(|c| c.mv), tallied.as_ref().map(|c| c.mv));
            successes += u64::from(tallied.is_some());
        }
        assert_eq!(tally.total_proposed(), 500);
        assert_eq!(tally.feasible.iter().sum::<u64>(), successes);
        for (p, f) in tally.proposed.iter().zip(tally.feasible.iter()) {
            assert!(f <= p, "feasible cannot exceed proposed");
        }
        // Merging doubles every cell.
        let mut doubled = tally;
        doubled.merge(&tally);
        assert_eq!(doubled.total_proposed(), 1000);
    }

    #[test]
    fn capacity_violations_are_rejected() {
        // tiny: capacity 10, demands 4 => max 2 customers per route.
        let (inst, ev) = setup(vec![vec![1, 2], vec![3, 4]]);
        let mut r = rng();
        for _ in 0..1000 {
            if let Some(c) = sample_of_kind(
                &mut r,
                &inst,
                &ev,
                OperatorKind::Relocate,
                SampleParams::default(),
            ) {
                // Every accepted relocate keeps loads within capacity.
                assert_eq!(c.preview.capacity_excess, 0.0);
                let mut applied = ev.clone();
                applied.apply(&inst, c.patch.clone());
                for i in 0..applied.n_routes() {
                    assert!(applied.route_eval(i).load <= inst.capacity());
                }
            }
        }
    }

    #[test]
    fn relocate_impossible_with_single_route() {
        let (inst, ev) = setup(vec![vec![1, 2]]);
        let mut r = rng();
        for kind in [
            OperatorKind::Relocate,
            OperatorKind::Exchange,
            OperatorKind::TwoOptStar,
        ] {
            assert!(
                sample_of_kind(&mut r, &inst, &ev, kind, SampleParams::default()).is_none(),
                "{kind:?} needs two routes"
            );
        }
    }

    #[test]
    fn two_opt_needs_two_customers() {
        let (inst, ev) = setup(vec![vec![1], vec![2], vec![3]]);
        let mut r = rng();
        for _ in 0..50 {
            assert!(sample_of_kind(
                &mut r,
                &inst,
                &ev,
                OperatorKind::TwoOpt,
                SampleParams::default()
            )
            .is_none());
        }
    }

    #[test]
    fn or_opt_needs_three_customers() {
        let (inst, ev) = setup(vec![vec![1, 2], vec![3, 4]]);
        let mut r = rng();
        for _ in 0..50 {
            assert!(sample_of_kind(
                &mut r,
                &inst,
                &ev,
                OperatorKind::OrOpt,
                SampleParams::default()
            )
            .is_none());
        }
    }

    #[test]
    fn or_opt_never_produces_identity() {
        let inst =
            vrptw::generator::GeneratorConfig::new(vrptw::generator::InstanceClass::R2, 12, 3)
                .with_max_vehicles(3)
                .build();
        let sol = vrptw_construct_like(&inst);
        let ev = EvaluatedSolution::new(sol, &inst);
        let mut r = rng();
        for _ in 0..500 {
            if let Some(c) = sample_of_kind(
                &mut r,
                &inst,
                &ev,
                OperatorKind::OrOpt,
                SampleParams::default(),
            ) {
                if let Move::OrOpt { route, .. } = c.mv {
                    let mut applied = ev.clone();
                    let before = ev.route(route).to_vec();
                    applied.apply(&inst, c.patch.clone());
                    assert!(
                        applied.route(route) != before.as_slice(),
                        "or-opt {:?} was an identity",
                        c.mv
                    );
                }
            }
        }
    }

    /// A crude round-robin split of customers into 3 routes (test helper —
    /// the real construction heuristic lives in `vrptw-construct`).
    fn vrptw_construct_like(inst: &Instance) -> Solution {
        let mut routes: Vec<Vec<u16>> = vec![Vec::new(); 3];
        for (i, c) in inst.customers().enumerate() {
            routes[i % 3].push(c);
        }
        Solution::from_routes(routes)
    }

    #[test]
    fn feasibility_off_admits_more_moves() {
        // A tight-window instance where many splices violate windows.
        let inst =
            vrptw::generator::GeneratorConfig::new(vrptw::generator::InstanceClass::R1, 30, 5)
                .build();
        let sol = Solution::one_customer_per_route(&inst);
        let ev = EvaluatedSolution::new(sol, &inst);
        let strict = SampleParams { feasibility: true };
        let loose = SampleParams { feasibility: false };
        let count = |params: SampleParams| {
            let mut r = rng();
            (0..2000)
                .filter(|_| sample_move(&mut r, &inst, &ev, params).is_some())
                .count()
        };
        assert!(count(loose) >= count(strict));
    }
}
