//! The bounded Pareto archive `M_archive` with crowding truncation.

use crate::{compare, crowding_distances, DomRelation, Dominance};

/// A capacity-bounded Pareto front.
///
/// Inserting works like [`crate::ParetoFront::insert`], except that when the
/// archive is full and the candidate is non-dominated, a crowding comparison
/// over the members *plus the candidate* decides: the most crowded point
/// (lowest NSGA-II crowding distance) is deleted — possibly the candidate
/// itself. This matches §III.B of the paper: "a solution that has a low
/// distance value has similar fitness values compared to the rest of the
/// solutions and will be deleted", keeping the archive spread along the
/// front instead of clustering.
#[derive(Debug, Clone)]
pub struct Archive<T: Dominance> {
    items: Vec<T>,
    capacity: usize,
}

impl<T: Dominance> Archive<T> {
    /// An empty archive holding at most `capacity` members.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "archive capacity must be positive");
        Self {
            items: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// The archive's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current members (mutually non-dominated, unordered).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Attempts to insert `item`.
    ///
    /// Returns `true` iff the item was *added* — i.e. it was non-dominated,
    /// not a duplicate, and survived the crowding comparison if the archive
    /// was full. This boolean is what the paper calls an "improving
    /// solution" in the collaborative variant (§III.E) and what drives the
    /// no-improvement restart counter.
    pub fn insert(&mut self, item: T) -> bool {
        let mut i = 0;
        while i < self.items.len() {
            match compare(self.items[i].objectives(), item.objectives()) {
                DomRelation::Dominates | DomRelation::Equal => return false,
                DomRelation::DominatedBy => {
                    self.items.swap_remove(i);
                }
                DomRelation::Incomparable => i += 1,
            }
        }
        if self.items.len() < self.capacity {
            self.items.push(item);
            return true;
        }
        // Full: crowding comparison over members + candidate.
        self.items.push(item);
        let dist = crowding_distances(&self.items);
        let (worst, _) = dist
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("crowding distances are not NaN"))
            .expect("archive is non-empty");
        let evicted_candidate = worst == self.items.len() - 1;
        self.items.swap_remove(worst);
        !evicted_candidate
    }

    /// Whether `objectives` is non-dominated w.r.t. the archive (it might
    /// still lose the crowding comparison on a full archive).
    pub fn would_accept(&self, objectives: &[f64]) -> bool {
        !self.items.iter().any(|m| {
            matches!(
                compare(m.objectives(), objectives),
                DomRelation::Dominates | DomRelation::Equal
            )
        })
    }

    /// Inserts every item of `items` in order, returning how many were
    /// added. This is the merge half of archive serialization: a
    /// checkpointed front round-trips through `absorb` into an equivalent
    /// archive (order of equal-capacity inserts is the only freedom, so
    /// replicas merge deterministically when callers fix the order).
    pub fn absorb(&mut self, items: impl IntoIterator<Item = T>) -> usize {
        let mut added = 0;
        for item in items {
            if self.insert(item) {
                added += 1;
            }
        }
        added
    }

    /// Rebuilds an archive from serialized members by inserting them in
    /// order — the deserialization half of archive checkpointing. A
    /// mutually non-dominated `items` that fits `capacity` reproduces the
    /// archive that was serialized.
    pub fn from_items(capacity: usize, items: impl IntoIterator<Item = T>) -> Self {
        let mut archive = Self::new(capacity);
        archive.absorb(items);
        archive
    }

    /// Consumes the archive, returning its members.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::non_dominated_indices;

    #[test]
    fn behaves_like_front_under_capacity() {
        let mut a = Archive::new(10);
        assert!(a.insert(vec![5.0, 5.0]));
        assert!(a.insert(vec![3.0, 7.0]));
        assert!(!a.insert(vec![6.0, 6.0])); // dominated
        assert!(!a.insert(vec![5.0, 5.0])); // duplicate
        assert!(a.insert(vec![4.0, 4.0])); // evicts [5,5]
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn full_archive_evicts_most_crowded() {
        let mut a = Archive::new(4);
        // A spread-out front.
        for v in [[0.0, 10.0], [3.0, 7.0], [7.0, 3.0], [10.0, 0.0]] {
            assert!(a.insert(v.to_vec()));
        }
        assert_eq!(a.len(), 4);
        // A point squeezed right next to [3,7]: somebody in that crowded
        // neighborhood must go, and the archive stays at capacity.
        a.insert(vec![3.1, 6.9]);
        assert_eq!(a.len(), 4);
        let nd = non_dominated_indices(a.items());
        assert_eq!(nd.len(), 4);
    }

    #[test]
    fn crowded_candidate_can_be_rejected() {
        let mut a = Archive::new(3);
        for v in [[0.0, 10.0], [5.0, 5.0], [10.0, 0.0]] {
            a.insert(v.to_vec());
        }
        // Candidate hugging the middle member: it is the most crowded point
        // (boundary members have infinite distance), so either it or [5,5]
        // is evicted; the archive keeps exactly 3 spread members.
        let added = a.insert(vec![5.1, 4.95]);
        assert_eq!(a.len(), 3);
        // Exactly one of {candidate present, candidate rejected} holds.
        let present = a.items().iter().any(|v| v == &vec![5.1, 4.95]);
        assert_eq!(added, present);
    }

    #[test]
    fn boundary_points_survive_truncation() {
        let mut a = Archive::new(3);
        a.insert(vec![0.0, 10.0]);
        a.insert(vec![10.0, 0.0]);
        a.insert(vec![5.0, 5.0]);
        a.insert(vec![4.0, 5.5]);
        a.insert(vec![6.0, 4.5]);
        // Extremes have infinite crowding distance and must never be evicted.
        assert!(a.items().iter().any(|v| v == &vec![0.0, 10.0]));
        assert!(a.items().iter().any(|v| v == &vec![10.0, 0.0]));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn dominating_insert_shrinks_then_accepts() {
        let mut a = Archive::new(2);
        a.insert(vec![5.0, 6.0]);
        a.insert(vec![6.0, 5.0]);
        assert!(a.insert(vec![1.0, 1.0]));
        assert_eq!(a.len(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        Archive::<Vec<f64>>::new(0);
    }

    #[test]
    fn serialized_front_round_trips_through_from_items() {
        let mut a = Archive::new(8);
        for v in [[0.0, 10.0], [3.0, 7.0], [7.0, 3.0], [10.0, 0.0]] {
            a.insert(v.to_vec());
        }
        // A checkpoint ships the members; rebuilding in the same order
        // reproduces the archive exactly.
        let shipped: Vec<Vec<f64>> = a.items().to_vec();
        let rebuilt = Archive::from_items(8, shipped.clone());
        assert_eq!(rebuilt.items(), a.items());
        // Absorbing a replica into a live archive adds only what is new.
        let mut merged = Archive::from_items(8, shipped);
        assert_eq!(merged.absorb(a.items().to_vec()), 0, "duplicates rejected");
        assert_eq!(merged.absorb(vec![vec![1.0, 8.0]]), 1);
    }

    #[test]
    fn members_remain_mutually_non_dominated_under_stress() {
        let mut a = Archive::new(8);
        let mut x = 42u64;
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let p = ((x >> 33) % 1000) as f64;
            let q = ((x >> 3) % 1000) as f64;
            a.insert(vec![p, q]);
            assert!(a.len() <= 8);
        }
        let nd = non_dominated_indices(a.items());
        assert_eq!(nd.len(), a.len());
    }
}
