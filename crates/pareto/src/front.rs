//! An unbounded set of mutually non-dominated items.

use crate::{compare, DomRelation, Dominance};

/// An unbounded Pareto front: inserting an item evicts every member it
/// dominates and is rejected if any member dominates it.
///
/// Items with objective vectors *identical* to an existing member are
/// rejected as duplicates — the front stores one representative per point in
/// objective space, which keeps the TSMO memories from filling with copies
/// of the same fitness (distinct solutions with identical objectives add no
/// information to the trade-off surface the paper reports).
#[derive(Debug, Clone)]
pub struct ParetoFront<T: Dominance> {
    items: Vec<T>,
}

impl<T: Dominance> Default for ParetoFront<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Dominance> ParetoFront<T> {
    /// An empty front.
    pub fn new() -> Self {
        Self { items: Vec::new() }
    }

    /// Attempts to insert `item`. Returns `true` if the front changed (the
    /// item was non-dominated and not an objective-space duplicate).
    pub fn insert(&mut self, item: T) -> bool {
        let mut i = 0;
        while i < self.items.len() {
            match compare(self.items[i].objectives(), item.objectives()) {
                DomRelation::Dominates | DomRelation::Equal => return false,
                DomRelation::DominatedBy => {
                    self.items.swap_remove(i);
                }
                DomRelation::Incomparable => i += 1,
            }
        }
        self.items.push(item);
        true
    }

    /// Whether `objectives` would be accepted by [`ParetoFront::insert`].
    pub fn would_accept(&self, objectives: &[f64]) -> bool {
        !self.items.iter().any(|m| {
            matches!(
                compare(m.objectives(), objectives),
                DomRelation::Dominates | DomRelation::Equal
            )
        })
    }

    /// The current members (mutually non-dominated, unordered).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Removes and returns the member at `index` (order not preserved).
    pub fn remove(&mut self, index: usize) -> T {
        self.items.swap_remove(index)
    }

    /// Drops all members.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Consumes the front, returning its members.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

impl<T: Dominance> FromIterator<T> for ParetoFront<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut front = Self::new();
        for item in iter {
            front.insert(item);
        }
        front
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keeps_only_non_dominated() {
        let mut f = ParetoFront::new();
        assert!(f.insert(vec![5.0, 5.0]));
        assert!(f.insert(vec![3.0, 7.0]));
        assert!(f.insert(vec![7.0, 3.0]));
        assert_eq!(f.len(), 3);
        // Dominates [5,5]: that member is evicted.
        assert!(f.insert(vec![4.0, 4.0]));
        assert_eq!(f.len(), 3);
        assert!(!f.items().iter().any(|v| v == &vec![5.0, 5.0]));
        // Dominated by [4,4]: rejected.
        assert!(!f.insert(vec![4.5, 4.5]));
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn duplicates_rejected() {
        let mut f = ParetoFront::new();
        assert!(f.insert(vec![1.0, 2.0]));
        assert!(!f.insert(vec![1.0, 2.0]));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn one_insert_can_evict_many() {
        let mut f = ParetoFront::new();
        f.insert(vec![5.0, 6.0]);
        f.insert(vec![6.0, 5.0]);
        f.insert(vec![7.0, 7.0]); // dominated, rejected
        assert_eq!(f.len(), 2);
        assert!(f.insert(vec![1.0, 1.0]));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn would_accept_matches_insert() {
        let mut f = ParetoFront::new();
        f.insert(vec![2.0, 2.0]);
        assert!(f.would_accept(&[1.0, 3.0]));
        assert!(!f.would_accept(&[2.0, 2.0]));
        assert!(!f.would_accept(&[3.0, 3.0]));
        assert!(f.would_accept(&[1.0, 1.0]));
    }

    #[test]
    fn members_always_mutually_non_dominated() {
        use crate::non_dominated_indices;
        let mut f = ParetoFront::new();
        // A pseudo-random stream of points.
        let mut x = 123u64;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (x >> 33) % 100;
            let b = (x >> 13) % 100;
            f.insert(vec![a as f64, b as f64]);
        }
        let nd = non_dominated_indices(f.items());
        assert_eq!(nd.len(), f.len(), "every member must be non-dominated");
    }

    #[test]
    fn from_iterator_collects_front() {
        let f: ParetoFront<Vec<f64>> = vec![
            vec![1.0, 9.0],
            vec![9.0, 1.0],
            vec![5.0, 5.0],
            vec![6.0, 6.0],
        ]
        .into_iter()
        .collect();
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn clear_and_remove() {
        let mut f = ParetoFront::new();
        f.insert(vec![1.0, 2.0]);
        f.insert(vec![2.0, 1.0]);
        let removed = f.remove(0);
        assert_eq!(removed.len(), 2);
        assert_eq!(f.len(), 1);
        f.clear();
        assert!(f.is_empty());
    }
}
