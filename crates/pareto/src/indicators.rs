//! Quality indicators for comparing Pareto-front approximations.

use crate::{weakly_dominates, Dominance};

/// Zitzler's set-coverage metric `C(A, B)`: the fraction of members of `B`
/// that are weakly dominated by at least one member of `A`.
///
/// This is the "coverage" column of Tables I–IV in the paper: for two
/// algorithms the pair `C(A,B) ↔ C(B,A)` is reported, and "a value of 100%
/// means that the algorithm in question dominates all the solutions found by
/// the other algorithms". Returns a value in `[0, 1]`; an empty `B` yields
/// 0 by convention (there is nothing to cover).
pub fn coverage<A: Dominance, B: Dominance>(a: &[A], b: &[B]) -> f64 {
    if b.is_empty() {
        return 0.0;
    }
    let covered = b
        .iter()
        .filter(|y| {
            a.iter()
                .any(|x| weakly_dominates(x.objectives(), y.objectives()))
        })
        .count();
    covered as f64 / b.len() as f64
}

/// Additive epsilon indicator `I_ε+(A, B)`: the smallest ε such that every
/// point of `B` is weakly dominated by some point of `A` translated by ε in
/// every objective. Smaller is better; `I_ε+(A, A) = 0`.
///
/// # Panics
/// Panics if either set is empty.
pub fn additive_epsilon<A: Dominance, B: Dominance>(a: &[A], b: &[B]) -> f64 {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "epsilon indicator needs non-empty sets"
    );
    let mut worst = f64::NEG_INFINITY;
    for y in b {
        let mut best = f64::INFINITY;
        for x in a {
            let eps = x
                .objectives()
                .iter()
                .zip(y.objectives())
                .map(|(xi, yi)| xi - yi)
                .fold(f64::NEG_INFINITY, f64::max);
            best = best.min(eps);
        }
        worst = worst.max(best);
    }
    worst
}

/// Exact hypervolume of a 2-objective front w.r.t. a reference point
/// (minimization; points outside the reference box contribute their clipped
/// part, fully dominated points contribute nothing extra).
///
/// # Panics
/// Panics if any point has a dimension other than 2.
pub fn hypervolume_2d<T: Dominance>(front: &[T], reference: [f64; 2]) -> f64 {
    let mut pts: Vec<[f64; 2]> = front
        .iter()
        .map(|p| {
            let o = p.objectives();
            assert_eq!(o.len(), 2, "hypervolume_2d needs 2-objective points");
            [o[0], o[1]]
        })
        .filter(|p| p[0] < reference[0] && p[1] < reference[1])
        .collect();
    // Sweep by increasing first objective; only keep the staircase.
    // total_cmp keeps the sort well-defined even if a NaN objective slips
    // in (NaN sorts last and never enters the accumulated area below).
    pts.sort_by(|a, b| a[0].total_cmp(&b[0]).then(a[1].total_cmp(&b[1])));
    let mut hv = 0.0;
    let mut best_y = reference[1];
    for p in pts {
        if p[1] < best_y {
            hv += (reference[0] - p[0]) * (best_y - p[1]);
            best_y = p[1];
        }
    }
    hv
}

/// Exact hypervolume of a 3-objective front w.r.t. a reference point.
///
/// Implemented by slicing along the third objective and accumulating 2-D
/// hypervolumes of the staircase of each slab — the classical HSO approach,
/// `O(n² log n)`, plenty for archive-sized fronts (tens of points).
///
/// # Panics
/// Panics if any point has a dimension other than 3.
pub fn hypervolume_3d<T: Dominance>(front: &[T], reference: [f64; 3]) -> f64 {
    let mut pts: Vec<[f64; 3]> = front
        .iter()
        .map(|p| {
            let o = p.objectives();
            assert_eq!(o.len(), 3, "hypervolume_3d needs 3-objective points");
            [o[0], o[1], o[2]]
        })
        .filter(|p| p[0] < reference[0] && p[1] < reference[1] && p[2] < reference[2])
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    pts.sort_by(|a, b| a[2].total_cmp(&b[2]));
    // z-levels where the 2-D cross-section changes.
    let mut hv = 0.0;
    for i in 0..pts.len() {
        let z_lo = pts[i][2];
        let z_hi = if i + 1 < pts.len() {
            pts[i + 1][2]
        } else {
            reference[2]
        };
        if z_hi <= z_lo {
            continue;
        }
        // Cross-section at z in [z_lo, z_hi): all points with z' <= z_lo.
        let slab: Vec<[f64; 2]> = pts[..=i].iter().map(|p| [p[0], p[1]]).collect();
        hv += hypervolume_2d(&slab, [reference[0], reference[1]]) * (z_hi - z_lo);
    }
    hv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_basics() {
        let a = vec![vec![1.0, 1.0]];
        let b = vec![vec![2.0, 2.0], vec![0.5, 3.0]];
        // [1,1] dominates [2,2] but not [0.5,3].
        assert!((coverage(&a, &b) - 0.5).abs() < 1e-12);
        assert!((coverage(&b, &a) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_of_self_is_one() {
        let a = vec![vec![1.0, 5.0], vec![5.0, 1.0]];
        assert_eq!(coverage(&a, &a), 1.0);
    }

    #[test]
    fn coverage_empty_b_is_zero() {
        let a = vec![vec![1.0, 1.0]];
        let b: Vec<Vec<f64>> = vec![];
        assert_eq!(coverage(&a, &b), 0.0);
    }

    #[test]
    fn coverage_is_not_symmetric() {
        let a = vec![vec![0.0, 0.0]];
        let b = vec![vec![1.0, 1.0]];
        assert_eq!(coverage(&a, &b), 1.0);
        assert_eq!(coverage(&b, &a), 0.0);
    }

    #[test]
    fn epsilon_identity_and_shift() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        assert!(additive_epsilon(&a, &a).abs() < 1e-12);
        let shifted = vec![vec![0.5, 1.5], vec![1.5, 0.5]];
        // a needs ε = 0.5 to cover the shifted set.
        assert!((additive_epsilon(&a, &shifted) - 0.5).abs() < 1e-12);
        // The shifted set already covers a: ε = -0.5.
        assert!((additive_epsilon(&shifted, &a) + 0.5).abs() < 1e-12);
    }

    #[test]
    fn hv2d_single_point() {
        let front = vec![vec![1.0, 1.0]];
        assert!((hypervolume_2d(&front, [3.0, 3.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hv2d_staircase() {
        let front = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        // Union of two boxes: (3-1)(3-2) + (3-2)(3-1) - overlap (3-2)(3-2)=1
        // => 2 + 2 - 1 = 3.
        assert!((hypervolume_2d(&front, [3.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn hv2d_dominated_point_adds_nothing() {
        let base = vec![vec![1.0, 1.0]];
        let with_dominated = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        assert_eq!(
            hypervolume_2d(&base, [4.0, 4.0]),
            hypervolume_2d(&with_dominated, [4.0, 4.0])
        );
    }

    #[test]
    fn hv2d_points_outside_reference_ignored() {
        let front = vec![vec![5.0, 5.0]];
        assert_eq!(hypervolume_2d(&front, [3.0, 3.0]), 0.0);
    }

    #[test]
    fn hv3d_single_point() {
        let front = vec![vec![1.0, 1.0, 1.0]];
        assert!((hypervolume_3d(&front, [2.0, 2.0, 2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hv3d_two_incomparable_points() {
        let front = vec![vec![1.0, 2.0, 1.0], vec![2.0, 1.0, 2.0]];
        // Box A: [1,3]x[2,3]x[1,3] vol = 2*1*2 = 4
        // Box B: [2,3]x[1,3]x[2,3] vol = 1*2*1 = 2
        // Overlap: [2,3]x[2,3]x[2,3] vol = 1
        // Union = 5.
        assert!((hypervolume_3d(&front, [3.0, 3.0, 3.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn hv3d_matches_2d_when_third_axis_flat() {
        let f3 = vec![vec![1.0, 2.0, 0.0], vec![2.0, 1.0, 0.0]];
        let f2 = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let hv3 = hypervolume_3d(&f3, [3.0, 3.0, 1.0]);
        let hv2 = hypervolume_2d(&f2, [3.0, 3.0]);
        assert!((hv3 - hv2).abs() < 1e-12);
    }

    #[test]
    fn hv_nan_objectives_degrade_gracefully() {
        // A NaN objective (e.g. a poisoned evaluation mid-race) must not
        // panic the indicator; the poisoned point simply contributes no
        // volume, like any point outside the reference box.
        let clean2 = vec![vec![1.0, 1.0]];
        let dirty2 = vec![vec![1.0, 1.0], vec![f64::NAN, 0.5], vec![0.5, f64::NAN]];
        assert_eq!(
            hypervolume_2d(&dirty2, [3.0, 3.0]),
            hypervolume_2d(&clean2, [3.0, 3.0])
        );
        let clean3 = vec![vec![1.0, 2.0, 1.0], vec![2.0, 1.0, 2.0]];
        let mut dirty3 = clean3.clone();
        dirty3.push(vec![1.0, 1.0, f64::NAN]);
        dirty3.push(vec![f64::NAN, f64::NAN, f64::NAN]);
        assert_eq!(
            hypervolume_3d(&dirty3, [3.0, 3.0, 3.0]),
            hypervolume_3d(&clean3, [3.0, 3.0, 3.0])
        );
    }

    #[test]
    fn hv_monotone_in_front_growth() {
        let small = vec![vec![2.0, 2.0, 2.0]];
        let large = vec![vec![2.0, 2.0, 2.0], vec![1.0, 3.0, 1.0]];
        let r = [4.0, 4.0, 4.0];
        assert!(hypervolume_3d(&large, r) >= hypervolume_3d(&small, r));
    }
}
