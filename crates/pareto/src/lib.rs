//! Multiobjective machinery: Pareto dominance, bounded archives with
//! crowding-distance truncation, and quality indicators.
//!
//! The TSMO algorithm keeps two multiobjective memories (§III.B of the
//! paper): `M_nondom`, a set of non-dominated solutions seen in past
//! neighborhoods, and `M_archive`, the bounded approximation of the Pareto
//! front maintained with the NSGA-II crowding comparison. Both are provided
//! here as [`ParetoFront`] and [`Archive`]. The set-coverage metric used in
//! the paper's result tables (Zitzler's C-metric, reference \[18\]) lives in
//! [`coverage`], alongside hypervolume and additive-epsilon indicators used
//! by the extension experiments.
//!
//! All objectives are **minimized** throughout.
//!
//! # Example
//!
//! ```
//! use pareto::{Archive, coverage, dominates};
//!
//! let mut archive = Archive::new(3);
//! archive.insert(vec![3.0, 1.0]);
//! archive.insert(vec![1.0, 3.0]);
//! assert!(!archive.insert(vec![4.0, 4.0])); // dominated, rejected
//! assert!(dominates(&[1.0, 3.0], &[4.0, 4.0]));
//!
//! // Zitzler's C-metric, as reported in the paper's tables:
//! let better = vec![vec![0.5, 0.5]];
//! assert_eq!(coverage(&better, archive.items()), 1.0);
//! ```

mod archive;
mod front;
mod indicators;

pub use archive::Archive;
pub use front::ParetoFront;
pub use indicators::{additive_epsilon, coverage, hypervolume_2d, hypervolume_3d};

/// Items that expose a minimization objective vector.
///
/// The vector must have the same length for every item that participates in
/// the same front/archive/indicator computation.
pub trait Dominance {
    /// The objective vector (all components minimized).
    fn objectives(&self) -> &[f64];
}

impl<T: Dominance + ?Sized> Dominance for &T {
    fn objectives(&self) -> &[f64] {
        (*self).objectives()
    }
}

impl Dominance for Vec<f64> {
    fn objectives(&self) -> &[f64] {
        self
    }
}

impl<const D: usize> Dominance for [f64; D] {
    fn objectives(&self) -> &[f64] {
        self
    }
}

/// The possible dominance relations between two objective vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomRelation {
    /// `a` is at least as good everywhere and strictly better somewhere.
    Dominates,
    /// `b` is at least as good everywhere and strictly better somewhere.
    DominatedBy,
    /// Each is strictly better somewhere.
    Incomparable,
    /// Identical vectors.
    Equal,
}

/// Compares two minimization objective vectors.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn compare(a: &[f64], b: &[f64]) -> DomRelation {
    assert_eq!(a.len(), b.len(), "objective vectors must have equal length");
    let mut a_better = false;
    let mut b_better = false;
    for (&x, &y) in a.iter().zip(b) {
        if x < y {
            a_better = true;
        } else if y < x {
            b_better = true;
        }
    }
    match (a_better, b_better) {
        (true, false) => DomRelation::Dominates,
        (false, true) => DomRelation::DominatedBy,
        (true, true) => DomRelation::Incomparable,
        (false, false) => DomRelation::Equal,
    }
}

/// `true` iff `a` strictly dominates `b` (minimization).
#[inline]
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    compare(a, b) == DomRelation::Dominates
}

/// `true` iff `a` weakly dominates `b` (`a` at least as good everywhere).
#[inline]
pub fn weakly_dominates(a: &[f64], b: &[f64]) -> bool {
    matches!(compare(a, b), DomRelation::Dominates | DomRelation::Equal)
}

/// Indices of the non-dominated members of `vectors` (ties on equal vectors
/// all survive).
pub fn non_dominated_indices<T: Dominance>(items: &[T]) -> Vec<usize> {
    let mut out = Vec::new();
    'outer: for (i, item) in items.iter().enumerate() {
        for (j, other) in items.iter().enumerate() {
            if i != j && dominates(other.objectives(), item.objectives()) {
                continue 'outer;
            }
        }
        out.push(i);
    }
    out
}

/// NSGA-II crowding distances for a set of mutually non-dominated vectors.
///
/// Boundary points per objective get `f64::INFINITY`; interior points sum
/// the normalized gap between their neighbors over all objectives. Larger
/// means less crowded. Used by [`Archive`] to decide which member to evict.
pub fn crowding_distances<T: Dominance>(items: &[T]) -> Vec<f64> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let d = items[0].objectives().len();
    let mut dist = vec![0.0f64; n];
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    let mut order: Vec<usize> = (0..n).collect();
    for m in 0..d {
        order.sort_by(|&a, &b| {
            items[a].objectives()[m]
                .partial_cmp(&items[b].objectives()[m])
                .expect("objective values must not be NaN")
        });
        let lo = items[order[0]].objectives()[m];
        let hi = items[order[n - 1]].objectives()[m];
        dist[order[0]] = f64::INFINITY;
        dist[order[n - 1]] = f64::INFINITY;
        let span = hi - lo;
        if span <= 0.0 {
            continue; // all equal in this objective: no contribution
        }
        for w in 1..(n - 1) {
            let prev = items[order[w - 1]].objectives()[m];
            let next = items[order[w + 1]].objectives()[m];
            if dist[order[w]].is_finite() {
                dist[order[w]] += (next - prev) / span;
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_relations() {
        assert_eq!(compare(&[1.0, 1.0], &[2.0, 2.0]), DomRelation::Dominates);
        assert_eq!(compare(&[2.0, 2.0], &[1.0, 1.0]), DomRelation::DominatedBy);
        assert_eq!(compare(&[1.0, 2.0], &[2.0, 1.0]), DomRelation::Incomparable);
        assert_eq!(compare(&[1.0, 2.0], &[1.0, 2.0]), DomRelation::Equal);
        // Weak improvement in one coordinate is enough.
        assert_eq!(compare(&[1.0, 2.0], &[1.0, 3.0]), DomRelation::Dominates);
    }

    #[test]
    #[should_panic]
    fn compare_length_mismatch_panics() {
        compare(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn dominates_and_weak() {
        assert!(dominates(&[0.0, 0.0], &[0.0, 1.0]));
        assert!(!dominates(&[0.0, 1.0], &[0.0, 1.0]));
        assert!(weakly_dominates(&[0.0, 1.0], &[0.0, 1.0]));
        assert!(!weakly_dominates(&[1.0, 0.0], &[0.0, 1.0]));
    }

    #[test]
    fn non_dominated_filtering() {
        let pts = vec![
            vec![1.0, 5.0], // nd
            vec![2.0, 4.0], // nd
            vec![3.0, 4.5], // dominated by [2,4]
            vec![0.5, 9.0], // nd
            vec![2.0, 4.0], // duplicate of nd point — kept
        ];
        assert_eq!(non_dominated_indices(&pts), vec![0, 1, 3, 4]);
    }

    #[test]
    fn crowding_boundaries_are_infinite() {
        let pts = vec![[0.0, 4.0], [1.0, 3.0], [2.0, 2.0], [3.0, 1.0], [4.0, 0.0]];
        let d = crowding_distances(&pts);
        assert!(d[0].is_infinite());
        assert!(d[4].is_infinite());
        assert!(d[1].is_finite() && d[2].is_finite() && d[3].is_finite());
        // Uniform spacing => identical interior distances.
        assert!((d[1] - d[2]).abs() < 1e-12);
        assert!((d[2] - d[3]).abs() < 1e-12);
    }

    #[test]
    fn crowding_prefers_isolated_points() {
        // Point 1 is crowded between 0 and 2; point 3 sits alone.
        let pts = vec![[0.0, 10.0], [0.1, 9.9], [0.2, 9.8], [5.0, 1.0], [10.0, 0.0]];
        let d = crowding_distances(&pts);
        assert!(d[3] > d[1], "isolated point should have larger distance");
    }

    #[test]
    fn crowding_small_sets_all_infinite() {
        assert!(crowding_distances(&[[1.0, 2.0]])
            .iter()
            .all(|x| x.is_infinite()));
        assert!(crowding_distances(&[[1.0, 2.0], [2.0, 1.0]])
            .iter()
            .all(|x| x.is_infinite()));
        assert!(crowding_distances::<[f64; 2]>(&[]).is_empty());
    }

    #[test]
    fn crowding_constant_objective_is_ignored() {
        let pts = vec![[0.0, 1.0], [1.0, 1.0], [2.0, 1.0], [3.0, 1.0]];
        let d = crowding_distances(&pts);
        // Middle points only accumulate from objective 0.
        assert!(d[1].is_finite());
        assert!(d[1] > 0.0);
    }
}
