//! Property-based tests of the multiobjective machinery.

use pareto::{
    compare, coverage, crowding_distances, dominates, hypervolume_2d, hypervolume_3d,
    non_dominated_indices, Archive, DomRelation, ParetoFront,
};
use proptest::prelude::*;

fn objective_vec(d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..100.0, d)
}

fn point_cloud(d: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(objective_vec(d), 1..60)
}

proptest! {
    /// Dominance is a strict partial order: irreflexive, asymmetric,
    /// transitive.
    #[test]
    fn dominance_is_a_strict_partial_order(
        a in objective_vec(3),
        b in objective_vec(3),
        c in objective_vec(3),
    ) {
        prop_assert!(!dominates(&a, &a));
        if dominates(&a, &b) {
            prop_assert!(!dominates(&b, &a));
        }
        if dominates(&a, &b) && dominates(&b, &c) {
            prop_assert!(dominates(&a, &c));
        }
    }

    /// `compare` is antisymmetric: swapping arguments swaps the relation.
    #[test]
    fn compare_is_antisymmetric(a in objective_vec(3), b in objective_vec(3)) {
        let fwd = compare(&a, &b);
        let bwd = compare(&b, &a);
        let expected = match fwd {
            DomRelation::Dominates => DomRelation::DominatedBy,
            DomRelation::DominatedBy => DomRelation::Dominates,
            other => other,
        };
        prop_assert_eq!(bwd, expected);
    }

    /// A front built from any stream is mutually non-dominated and every
    /// rejected point is weakly dominated by some member.
    #[test]
    fn front_invariants(points in point_cloud(2)) {
        let mut front = ParetoFront::new();
        for p in &points {
            front.insert(p.clone());
        }
        let nd = non_dominated_indices(front.items());
        prop_assert_eq!(nd.len(), front.len());
        for p in &points {
            let covered = front
                .items()
                .iter()
                .any(|m| !dominates(p, m));
            prop_assert!(covered, "front lost ground against {:?}", p);
            prop_assert!(!front.would_accept(p) || front.items().iter().all(|m| m != p));
        }
    }

    /// Archives never exceed capacity and stay mutually non-dominated.
    #[test]
    fn archive_invariants(points in point_cloud(3), cap in 1usize..10) {
        let mut archive = Archive::new(cap);
        for p in points {
            archive.insert(p);
            prop_assert!(archive.len() <= cap);
            let nd = non_dominated_indices(archive.items());
            prop_assert_eq!(nd.len(), archive.len());
        }
    }

    /// Insertion order cannot change which points a front considers
    /// non-dominated (set equality of surviving objective vectors).
    #[test]
    fn front_is_order_independent(points in point_cloud(2)) {
        let forward: ParetoFront<Vec<f64>> = points.iter().cloned().collect();
        let reverse: ParetoFront<Vec<f64>> = points.iter().rev().cloned().collect();
        let norm = |f: &ParetoFront<Vec<f64>>| {
            let mut v: Vec<Vec<f64>> = f.items().to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).expect("not NaN"));
            v
        };
        prop_assert_eq!(norm(&forward), norm(&reverse));
    }

    /// Coverage is reflexive (C(A,A) = 1) and bounded.
    #[test]
    fn coverage_properties(a in point_cloud(3), b in point_cloud(3)) {
        prop_assert_eq!(coverage(&a, &a), 1.0);
        let c = coverage(&a, &b);
        prop_assert!((0.0..=1.0).contains(&c));
    }

    /// Hypervolume is monotone: adding a point never decreases it, and it
    /// is bounded by the reference box volume.
    #[test]
    fn hypervolume_monotone_2d(points in point_cloud(2), extra in objective_vec(2)) {
        let reference = [110.0, 110.0];
        let before = hypervolume_2d(&points, reference);
        let mut more = points.clone();
        more.push(extra);
        let after = hypervolume_2d(&more, reference);
        prop_assert!(after + 1e-9 >= before);
        prop_assert!(after <= 110.0 * 110.0 + 1e-9);
    }

    /// 3-D hypervolume agrees with 2-D when the third coordinate is flat.
    #[test]
    fn hypervolume_3d_flat_slice(points in point_cloud(2)) {
        let reference3 = [110.0, 110.0, 1.0];
        let flat: Vec<Vec<f64>> =
            points.iter().map(|p| vec![p[0], p[1], 0.0]).collect();
        let hv3 = hypervolume_3d(&flat, reference3);
        let hv2 = hypervolume_2d(&points, [110.0, 110.0]);
        prop_assert!((hv3 - hv2).abs() < 1e-6, "hv3 {} vs hv2 {}", hv3, hv2);
    }

    /// Crowding distances: boundary maxima/minima per objective are always
    /// infinite when there are 3+ points.
    #[test]
    fn crowding_boundaries(points in prop::collection::vec(objective_vec(2), 3..40)) {
        let d = crowding_distances(&points);
        for m in 0..2 {
            let lo = (0..points.len())
                .min_by(|&a, &b| points[a][m].partial_cmp(&points[b][m]).expect("not NaN"))
                .expect("non-empty");
            let hi = (0..points.len())
                .max_by(|&a, &b| points[a][m].partial_cmp(&points[b][m]).expect("not NaN"))
                .expect("non-empty");
            prop_assert!(d[lo].is_infinite());
            prop_assert!(d[hi].is_infinite());
        }
    }
}
