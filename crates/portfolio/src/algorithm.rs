//! The [`RacedAlgorithm`] contract and the built-in contenders.
//!
//! A raced algorithm is anything that can spend a bounded slice of
//! evaluation budget, pause, and later resume from where it stopped. The
//! TSMO variants resume through [`TsmoConfig::warm_start`] (searchers are
//! re-seeded from the contender's current front); the MOEAs resume through
//! their own `warm_start` population seeding, which PR satellite work gave
//! the same budget accounting as a cold start. Every slice runs under a
//! [`CancelToken`], so a portfolio job inherits the service's deadline and
//! cancel semantics unchanged.

use pareto::Archive;
use std::sync::Arc;
use tsmo_core::{CancelToken, FrontEntry, ParallelVariant, TsmoConfig};
use vrptw::{Instance, Solution};

/// An algorithm the portfolio can race: seeded slice runs, cooperative
/// cancellation, and a resumable current front.
pub trait RacedAlgorithm: Send {
    /// Stable display name (also the wire/CLI identifier).
    fn name(&self) -> &str;

    /// Spends (up to) `evaluations` evaluations resuming from the state
    /// earlier slices left behind. `seed` is the slice's derived seed —
    /// the scheduler pins it per `(portfolio seed, contender, round)`, so
    /// re-running a portfolio replays every slice identically. Returns
    /// the evaluations actually consumed — less than the slice only when
    /// `cancel` fired mid-slice, or (for multi-searcher contenders that
    /// split the slice per searcher) by a rounding remainder smaller than
    /// the searcher count.
    fn run_slice(
        &mut self,
        inst: &Arc<Instance>,
        evaluations: u64,
        seed: u64,
        cancel: &CancelToken,
    ) -> u64;

    /// The contender's current front: the bounded non-dominated archive
    /// accumulated over all slices so far (stage one of the two-stage
    /// merge).
    fn front(&self) -> &[FrontEntry];
}

/// Shared sizing for the built-in contenders.
#[derive(Debug, Clone)]
pub struct RaceParams {
    /// Neighborhood size for the TSMO variants.
    pub neighborhood_size: usize,
    /// Processor count for the parallel TSMO variants.
    pub processors: usize,
    /// Population size for the generational MOEAs.
    pub population: usize,
    /// Per-contender front capacity (stage-one archives).
    pub archive_capacity: usize,
}

impl Default for RaceParams {
    fn default() -> Self {
        Self {
            neighborhood_size: 50,
            processors: 3,
            population: 24,
            archive_capacity: 30,
        }
    }
}

/// The algorithm identifiers [`contender`] accepts (the `--algos` values).
pub const KNOWN_ALGORITHMS: [&str; 7] = [
    "tsmo-seq",
    "tsmo-sync",
    "tsmo-async",
    "tsmo-collab",
    "nsga2",
    "spea2",
    "paes",
];

/// Builds a contender by identifier. Returns `None` for unknown names;
/// see [`KNOWN_ALGORITHMS`].
pub fn contender(name: &str, params: &RaceParams) -> Option<Box<dyn RacedAlgorithm>> {
    let variant = match name {
        "tsmo-seq" | "sequential" => Some(ParallelVariant::Sequential),
        "tsmo-sync" | "synchronous" => Some(ParallelVariant::Synchronous(params.processors)),
        "tsmo-async" | "asynchronous" => Some(ParallelVariant::Asynchronous(params.processors)),
        "tsmo-collab" | "collaborative" => Some(ParallelVariant::Collaborative(params.processors)),
        _ => None,
    };
    if let Some(variant) = variant {
        return Some(Box::new(TsmoContender::new(name, variant, params)));
    }
    match name {
        "nsga2" | "spea2" | "paes" => Some(Box::new(MoeaContender::new(name, params))),
        _ => None,
    }
}

/// A TSMO variant raced through [`ParallelVariant::run_with_cancel`].
pub struct TsmoContender {
    name: String,
    variant: ParallelVariant,
    base: TsmoConfig,
    pool: Vec<Solution>,
    archive: Archive<FrontEntry>,
    items: Vec<FrontEntry>,
}

impl TsmoContender {
    /// A contender running `variant` with the shared race sizing.
    pub fn new(name: &str, variant: ParallelVariant, params: &RaceParams) -> Self {
        let base = TsmoConfig {
            neighborhood_size: params.neighborhood_size,
            ..TsmoConfig::default()
        };
        Self {
            name: name.to_string(),
            variant,
            base,
            pool: Vec::new(),
            archive: Archive::new(params.archive_capacity.max(1)),
            items: Vec::new(),
        }
    }
}

impl RacedAlgorithm for TsmoContender {
    fn name(&self) -> &str {
        &self.name
    }

    fn run_slice(
        &mut self,
        inst: &Arc<Instance>,
        evaluations: u64,
        seed: u64,
        cancel: &CancelToken,
    ) -> u64 {
        let mut cfg = self.base.clone();
        // The collaborative variant's budget is *per searcher* (P
        // searchers each spend max_evaluations); every other variant
        // treats it as the global total. Split the slice so one raced
        // slice always costs (at most) the slice, whatever the variant.
        cfg.max_evaluations = match self.variant {
            ParallelVariant::Collaborative(p) => evaluations / p.max(1) as u64,
            _ => evaluations,
        };
        cfg.seed = seed;
        cfg.warm_start = self.pool.clone();
        let out = self.variant.run_with_cancel(
            inst,
            &cfg,
            tsmo_obs::noop(),
            tsmo_faults::none(),
            cancel.clone(),
        );
        self.pool = out.archive.iter().map(|e| e.solution.clone()).collect();
        self.archive.absorb(out.archive);
        self.items = self.archive.items().to_vec();
        out.evaluations
    }

    fn front(&self) -> &[FrontEntry] {
        &self.items
    }
}

/// Which MOEA a [`MoeaContender`] races.
enum MoeaKind {
    Nsga2,
    Spea2,
    Paes,
}

/// An MOEA raced through its `run_with_cancel` entry point, resuming via
/// `warm_start` population seeding.
pub struct MoeaContender {
    name: String,
    kind: MoeaKind,
    params: RaceParams,
    pool: Vec<Solution>,
    archive: Archive<FrontEntry>,
    items: Vec<FrontEntry>,
}

impl MoeaContender {
    /// A contender for `name` (`"nsga2"`, `"spea2"`, or `"paes"`).
    ///
    /// # Panics
    /// Panics on any other name; route construction through [`contender`].
    pub fn new(name: &str, params: &RaceParams) -> Self {
        let kind = match name {
            "nsga2" => MoeaKind::Nsga2,
            "spea2" => MoeaKind::Spea2,
            "paes" => MoeaKind::Paes,
            other => panic!("unknown MOEA '{other}'"),
        };
        Self {
            name: name.to_string(),
            kind,
            params: params.clone(),
            pool: Vec::new(),
            archive: Archive::new(params.archive_capacity.max(1)),
            items: Vec::new(),
        }
    }
}

impl RacedAlgorithm for MoeaContender {
    fn name(&self) -> &str {
        &self.name
    }

    fn run_slice(
        &mut self,
        inst: &Arc<Instance>,
        evaluations: u64,
        seed: u64,
        cancel: &CancelToken,
    ) -> u64 {
        let (front, spent) = match self.kind {
            MoeaKind::Nsga2 => {
                let out = moea::Nsga2::new(moea::Nsga2Config {
                    population: self.params.population,
                    max_evaluations: evaluations,
                    seed,
                    warm_start: self.pool.clone(),
                    ..Default::default()
                })
                .run_with_cancel(inst, cancel.clone());
                (out.front, out.evaluations)
            }
            MoeaKind::Spea2 => {
                let out = moea::Spea2::new(moea::Spea2Config {
                    population: self.params.population,
                    archive: self.params.archive_capacity.max(2),
                    max_evaluations: evaluations,
                    seed,
                    warm_start: self.pool.clone(),
                    ..Default::default()
                })
                .run_with_cancel(inst, cancel.clone());
                (out.front, out.evaluations)
            }
            MoeaKind::Paes => {
                let out = moea::Paes::new(moea::PaesConfig {
                    archive: self.params.archive_capacity.max(1),
                    max_evaluations: evaluations,
                    seed,
                    warm_start: self.pool.clone(),
                    ..Default::default()
                })
                .run_with_cancel(inst, cancel.clone());
                (out.front, out.evaluations)
            }
        };
        self.pool = front.iter().map(|(s, _)| s.clone()).collect();
        self.archive
            .absorb(front.into_iter().map(|(s, o)| FrontEntry::new(s, o)));
        self.items = self.archive.items().to_vec();
        spent
    }

    fn front(&self) -> &[FrontEntry] {
        &self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pareto::Dominance;
    use vrptw::generator::{GeneratorConfig, InstanceClass};

    #[test]
    fn factory_knows_every_advertised_algorithm() {
        let params = RaceParams::default();
        for name in KNOWN_ALGORITHMS {
            let c = contender(name, &params).expect(name);
            assert_eq!(c.name(), name);
        }
        assert!(contender("simulated-annealing", &params).is_none());
    }

    #[test]
    fn slices_resume_and_accumulate_a_front() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R1, 25, 5).build());
        let params = RaceParams::default();
        for name in ["tsmo-seq", "nsga2", "paes"] {
            let mut c = contender(name, &params).unwrap();
            let spent1 = c.run_slice(&inst, 600, 11, &CancelToken::never());
            assert_eq!(spent1, 600, "{name} must honor the slice budget");
            assert!(!c.front().is_empty(), "{name} produced no front");
            let first: Vec<[f64; 3]> = c
                .front()
                .iter()
                .map(|e| [e.objectives()[0], e.objectives()[1], e.objectives()[2]])
                .collect();
            let spent2 = c.run_slice(&inst, 600, 12, &CancelToken::never());
            assert_eq!(spent2, 600);
            // The accumulated archive never regresses: every old point is
            // still matched or dominated by the new front.
            let now = c.front().to_vec();
            for old in &first {
                assert!(
                    now.iter()
                        .any(|n| pareto::weakly_dominates(n.objectives(), old)),
                    "{name} lost front quality across slices"
                );
            }
        }
    }
}
