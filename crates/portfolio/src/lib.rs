//! Budget-raced algorithm portfolios with coverage-driven reallocation.
//!
//! The paper's four parallelization variants and the comparison MOEAs each
//! dominate on *some* Solomon class: no single algorithm wins everywhere.
//! This crate races any mix of them on slices of one shared evaluation
//! budget. After every round the scheduler scores each contender's front
//! with the Zitzler coverage metric (hypervolume breaks ties) and
//! deterministically reallocates the remaining budget toward the
//! contenders whose fronts dominate — softmax over the scores with an
//! η-greedy exploration draw from a pinned-seed RNG. Losers decay to a
//! budget floor rather than zero, and a contender pinned at the floor for
//! consecutive rounds is retired. Fronts merge through a two-stage
//! [`pareto::Archive`] (per-contender, then global), so the merged result
//! is mutually non-dominated by construction.
//!
//! The entire race — budget ledger, event stream, merged front — is a pure
//! function of `(instance, algorithms, seed, budget)`: re-running a
//! portfolio job reproduces the ledger byte for byte.
//!
//! ```
//! use std::sync::Arc;
//! use tsmo_portfolio::{contender, Portfolio, PortfolioConfig, RaceParams};
//! use vrptw::generator::{GeneratorConfig, InstanceClass};
//!
//! let inst = Arc::new(GeneratorConfig::new(InstanceClass::C1, 25, 5).build());
//! let params = RaceParams::default();
//! let contenders = ["tsmo-seq", "nsga2"]
//!     .iter()
//!     .map(|n| contender(n, &params).unwrap())
//!     .collect();
//! let cfg = PortfolioConfig { rounds: 2, total_evaluations: 2_000, ..Default::default() };
//! let out = Portfolio::new(cfg).run(
//!     &inst,
//!     contenders,
//!     tsmo_obs::noop(),
//!     tsmo_core::CancelToken::never(),
//! );
//! assert_eq!(out.evaluations, 2_000);
//! assert!(!out.merged.is_empty());
//! ```

mod algorithm;
mod scheduler;

pub use algorithm::{
    contender, MoeaContender, RaceParams, RacedAlgorithm, TsmoContender, KNOWN_ALGORITHMS,
};
pub use scheduler::{
    ContenderReport, LedgerEntry, Portfolio, PortfolioConfig, PortfolioOutcome, RoundLedger,
};
