//! The budget-racing scheduler: rounds, scoring, reallocation, merge.
//!
//! A [`Portfolio`] splits one evaluation budget into rounds. Every round
//! each live contender runs a budget slice, then the fronts are scored
//! against each other with the Zitzler coverage metric (hypervolume breaks
//! ties). The next round's slices follow a softmax over the scores with an
//! η-greedy exploration draw from a pinned-seed RNG, so the whole race —
//! ledger, events, merged front — is a pure function of
//! `(instance, algorithms, seed, budget)`. Losing contenders decay to a
//! budget floor rather than zero; a contender pinned at the floor for
//! [`PortfolioConfig::retire_after`] consecutive rounds is retired and its
//! share flows back to the survivors.

use crate::algorithm::RacedAlgorithm;
use detrand::{Rng, Xoshiro256StarStar};
use pareto::Archive;
use std::sync::Arc;
use tsmo_core::{CancelToken, FrontEntry};
use tsmo_obs::metrics::names;
use tsmo_obs::{json, Recorder, SearchEvent};
use vrptw::Instance;

/// Scheduler parameters. Everything that influences the race is in here or
/// in the contender list, so equal configs replay byte-identically.
#[derive(Debug, Clone)]
pub struct PortfolioConfig {
    /// Number of racing rounds the budget is split into.
    pub rounds: u32,
    /// Total evaluation budget across all contenders and rounds.
    pub total_evaluations: u64,
    /// Master seed; slice seeds and the exploration RNG derive from it.
    pub seed: u64,
    /// Budget floor as a fraction of the uniform share — losers decay to
    /// `floor / live_count` of the round budget, never to zero.
    pub floor: f64,
    /// η-greedy exploration rate: each reallocation boosts one random
    /// contender back to (at least) the uniform share with this probability.
    pub eta: f64,
    /// Softmax temperature over the coverage scores (higher = greedier).
    pub softmax_beta: f64,
    /// Retire a contender after this many consecutive rounds pinned at the
    /// budget floor (`0` disables retirement).
    pub retire_after: u32,
    /// Capacity of the stage-two merged archive.
    pub merge_capacity: usize,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        Self {
            rounds: 4,
            total_evaluations: 20_000,
            seed: 42,
            floor: 0.25,
            eta: 0.1,
            softmax_beta: 4.0,
            retire_after: 2,
            merge_capacity: 60,
        }
    }
}

/// One contender's row in a round of the budget ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// Contender index.
    pub contender: u32,
    /// Algorithm name.
    pub algo: String,
    /// Evaluations granted for the round.
    pub allocated: u64,
    /// Evaluations actually consumed (differs only under cancellation).
    pub spent: u64,
    /// Mean coverage `C(this, other)` over the other live contenders.
    pub coverage: f64,
    /// Hypervolume of the contender's front w.r.t. the round's shared
    /// reference point.
    pub hypervolume: f64,
    /// Budget weight the allocation was drawn from.
    pub weight: f64,
}

/// The complete record of one racing round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundLedger {
    /// Round index (0-based).
    pub round: u32,
    /// Per-live-contender rows, in contender order.
    pub entries: Vec<LedgerEntry>,
    /// The round's coverage winner.
    pub winner: u32,
    /// Contenders retired at the end of this round.
    pub retired: Vec<u32>,
}

impl RoundLedger {
    /// The round as one JSON object with a fixed field order, so equal
    /// races serialize byte-identically.
    pub fn to_json_line(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"round\":");
        out.push_str(&self.round.to_string());
        out.push_str(",\"winner\":");
        out.push_str(&self.winner.to_string());
        out.push_str(",\"retired\":[");
        for (i, r) in self.retired.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.to_string());
        }
        out.push_str("],\"entries\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"contender\":");
            out.push_str(&e.contender.to_string());
            out.push_str(",\"algo\":");
            json::write_str(&mut out, &e.algo);
            out.push_str(",\"allocated\":");
            out.push_str(&e.allocated.to_string());
            out.push_str(",\"spent\":");
            out.push_str(&e.spent.to_string());
            out.push_str(",\"coverage\":");
            json::write_f64(&mut out, e.coverage);
            out.push_str(",\"hypervolume\":");
            json::write_f64(&mut out, e.hypervolume);
            out.push_str(",\"weight\":");
            json::write_f64(&mut out, e.weight);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Final per-contender summary.
#[derive(Debug, Clone)]
pub struct ContenderReport {
    /// Algorithm name.
    pub name: String,
    /// The contender's accumulated front (stage-one archive).
    pub front: Vec<FrontEntry>,
    /// Evaluations consumed across all its slices.
    pub evaluations: u64,
    /// Rounds this contender won on coverage.
    pub rounds_won: u32,
    /// Round after which the contender was retired, if it was.
    pub retired_round: Option<u32>,
}

/// Everything a portfolio race produces.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// Stage-two merged front over every contender (mutually non-dominated
    /// by construction of [`pareto::Archive`]).
    pub merged: Vec<FrontEntry>,
    /// Round-by-round budget ledger.
    pub ledger: Vec<RoundLedger>,
    /// Per-contender reports, in contender order.
    pub contenders: Vec<ContenderReport>,
    /// Total evaluations consumed.
    pub evaluations: u64,
}

impl PortfolioOutcome {
    /// The ledger as JSONL — the byte-identical reproducibility artifact.
    pub fn ledger_jsonl(&self) -> String {
        let mut out = String::new();
        for round in &self.ledger {
            out.push_str(&round.to_json_line());
            out.push('\n');
        }
        out
    }
}

/// Derives the pinned seed for one contender's slice in one round.
fn slice_seed(seed: u64, contender: usize, round: u32) -> u64 {
    seed ^ (contender as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (u64::from(round) + 1).wrapping_mul(0xD1B5_4A32_D192_ED03)
}

/// Internal per-contender race state.
struct Lane {
    algo: Box<dyn RacedAlgorithm>,
    weight: f64,
    evaluations: u64,
    rounds_won: u32,
    floor_streak: u32,
    retired_round: Option<u32>,
}

impl Lane {
    fn live(&self) -> bool {
        self.retired_round.is_none()
    }
}

/// The budget-racing scheduler. See the module docs for the round protocol.
pub struct Portfolio {
    cfg: PortfolioConfig,
}

impl Portfolio {
    /// A scheduler with the given parameters.
    pub fn new(cfg: PortfolioConfig) -> Self {
        Self { cfg }
    }

    /// Races `contenders` on `inst` and merges their fronts.
    ///
    /// Slices run sequentially in contender order (the race is about
    /// budget shares, not wall clock), each under `cancel`; once the token
    /// fires the current round is cut short and the outcome reports what
    /// was merged so far.
    ///
    /// # Panics
    /// Panics when `contenders` is empty or `rounds == 0`.
    pub fn run(
        &self,
        inst: &Arc<Instance>,
        contenders: Vec<Box<dyn RacedAlgorithm>>,
        recorder: Arc<dyn Recorder>,
        cancel: CancelToken,
    ) -> PortfolioOutcome {
        let cfg = &self.cfg;
        assert!(!contenders.is_empty(), "a portfolio needs contenders");
        assert!(cfg.rounds > 0, "a portfolio needs at least one round");
        let n = contenders.len();
        let mut lanes: Vec<Lane> = contenders
            .into_iter()
            .map(|algo| Lane {
                algo,
                weight: 1.0 / n as f64,
                evaluations: 0,
                rounds_won: 0,
                floor_streak: 0,
                retired_round: None,
            })
            .collect();
        // The exploration RNG is pinned to the master seed and drawn in a
        // fixed order, so η-greedy boosts replay exactly.
        let mut explore = Xoshiro256StarStar::seed_from_u64(cfg.seed ^ 0xA110_CA7E_0F0F_0F0F);
        let mut ledger = Vec::with_capacity(cfg.rounds as usize);
        let mut total_spent = 0u64;
        let base = cfg.total_evaluations / u64::from(cfg.rounds);
        let extra = cfg.total_evaluations % u64::from(cfg.rounds);

        'rounds: for round in 0..cfg.rounds {
            let round_budget = base + u64::from(u64::from(round) < extra);
            let slices = allocate(&lanes, round_budget);
            for (i, lane) in lanes.iter().enumerate() {
                if !lane.live() {
                    continue;
                }
                recorder.event(SearchEvent::BudgetReallocated {
                    round,
                    contender: i as u32,
                    evaluations: slices[i],
                });
                recorder.counter_add(names::PORTFOLIO_REALLOCATIONS, 1);
            }

            let mut spent = vec![0u64; n];
            let mut truncated = false;
            for (i, lane) in lanes.iter_mut().enumerate() {
                if !lane.live() || slices[i] == 0 {
                    continue;
                }
                let used =
                    lane.algo
                        .run_slice(inst, slices[i], slice_seed(cfg.seed, i, round), &cancel);
                spent[i] = used;
                lane.evaluations += used;
                total_spent += used;
                recorder.counter_add(names::PORTFOLIO_EVALUATIONS, used);
                if cancel.is_stopped() {
                    truncated = true;
                    break;
                }
            }

            let (scores, hypervolumes) = score(&lanes);
            for (i, lane) in lanes.iter().enumerate() {
                if !lane.live() {
                    continue;
                }
                recorder.event(SearchEvent::RoundScored {
                    round,
                    contender: i as u32,
                    coverage: scores[i],
                    hypervolume: hypervolumes[i],
                });
                recorder.counter_add(names::PORTFOLIO_ROUNDS_SCORED, 1);
            }
            let winner = winner_index(&lanes, &scores, &hypervolumes);
            lanes[winner].rounds_won += 1;

            let mut record = RoundLedger {
                round,
                entries: lanes
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.live())
                    .map(|(i, lane)| LedgerEntry {
                        contender: i as u32,
                        algo: lane.algo.name().to_string(),
                        allocated: slices[i],
                        spent: spent[i],
                        coverage: scores[i],
                        hypervolume: hypervolumes[i],
                        weight: lane.weight,
                    })
                    .collect(),
                winner: winner as u32,
                retired: Vec::new(),
            };

            let last_round = round + 1 == cfg.rounds;
            if !last_round && !truncated {
                let at_floor = reweight(&mut lanes, &scores, &hypervolumes, cfg, &mut explore);
                for (i, lane) in lanes.iter_mut().enumerate() {
                    if !lane.live() {
                        continue;
                    }
                    lane.floor_streak = if at_floor[i] {
                        lane.floor_streak + 1
                    } else {
                        0
                    };
                }
                // Retire floor-pinned lanes — never the round winner, and
                // never below two live contenders (coverage needs a rival).
                if cfg.retire_after > 0 {
                    for i in 0..n {
                        let live = lanes.iter().filter(|l| l.live()).count();
                        if live <= 2 || i == winner || !lanes[i].live() {
                            continue;
                        }
                        if lanes[i].floor_streak >= cfg.retire_after {
                            lanes[i].retired_round = Some(round);
                            lanes[i].weight = 0.0;
                            record.retired.push(i as u32);
                            recorder.event(SearchEvent::ContenderRetired {
                                round,
                                contender: i as u32,
                            });
                            recorder.counter_add(names::PORTFOLIO_CONTENDERS_RETIRED, 1);
                        }
                    }
                    if !record.retired.is_empty() {
                        renormalize(&mut lanes);
                    }
                }
            }
            ledger.push(record);
            if truncated {
                break 'rounds;
            }
        }

        // Stage two: the merged archive absorbs every stage-one front.
        let mut merged = Archive::new(cfg.merge_capacity.max(1));
        for lane in &lanes {
            merged.absorb(lane.algo.front().iter().cloned());
        }
        let contenders = lanes
            .iter()
            .map(|lane| ContenderReport {
                name: lane.algo.name().to_string(),
                front: lane.algo.front().to_vec(),
                evaluations: lane.evaluations,
                rounds_won: lane.rounds_won,
                retired_round: lane.retired_round,
            })
            .collect();
        PortfolioOutcome {
            merged: merged.items().to_vec(),
            ledger,
            contenders,
            evaluations: total_spent,
        }
    }
}

/// Splits `round_budget` across the live lanes proportionally to their
/// weights; the integer remainder goes to the heaviest lane (ties break to
/// the lowest index).
fn allocate(lanes: &[Lane], round_budget: u64) -> Vec<u64> {
    let mut slices = vec![0u64; lanes.len()];
    let mut granted = 0u64;
    let mut heaviest: Option<usize> = None;
    for (i, lane) in lanes.iter().enumerate() {
        if !lane.live() {
            continue;
        }
        slices[i] = (lane.weight * round_budget as f64).floor() as u64;
        granted += slices[i];
        if heaviest.is_none_or(|h| lane.weight > lanes[h].weight) {
            heaviest = Some(i);
        }
    }
    if let Some(h) = heaviest {
        slices[h] += round_budget - granted;
    }
    slices
}

/// Scores every live lane: mean coverage over the other live fronts, and
/// hypervolume against a shared reference point spanning the union.
fn score(lanes: &[Lane]) -> (Vec<f64>, Vec<f64>) {
    let n = lanes.len();
    let mut coverage = vec![0.0; n];
    let mut hv = vec![0.0; n];
    let live: Vec<usize> = (0..n).filter(|&i| lanes[i].live()).collect();
    let mut reference = [f64::MIN; 3];
    for &i in &live {
        for entry in lanes[i].algo.front() {
            let o = pareto::Dominance::objectives(entry);
            for k in 0..3 {
                if o[k].is_finite() && o[k] > reference[k] {
                    reference[k] = o[k];
                }
            }
        }
    }
    let have_points = reference.iter().all(|r| *r > f64::MIN);
    if have_points {
        for r in &mut reference {
            *r = *r * 1.1 + 1.0;
        }
    }
    for &i in &live {
        let mine = lanes[i].algo.front();
        if live.len() > 1 {
            let mut sum = 0.0;
            for &j in &live {
                if j != i {
                    sum += pareto::coverage(mine, lanes[j].algo.front());
                }
            }
            coverage[i] = sum / (live.len() - 1) as f64;
        }
        if have_points {
            hv[i] = pareto::hypervolume_3d(mine, reference);
        }
    }
    (coverage, hv)
}

/// The round winner: best coverage, hypervolume tiebreak, then lowest index.
fn winner_index(lanes: &[Lane], scores: &[f64], hv: &[f64]) -> usize {
    let mut best: Option<usize> = None;
    for (i, lane) in lanes.iter().enumerate() {
        if !lane.live() {
            continue;
        }
        let better = match best {
            None => true,
            Some(b) => scores[i] > scores[b] || (scores[i] == scores[b] && hv[i] > hv[b]),
        };
        if better {
            best = Some(i);
        }
    }
    best.expect("at least one live lane")
}

/// Computes the next round's weights: softmax over coverage (with a small
/// normalized-hypervolume tiebreak term), an η-greedy boost from the pinned
/// RNG, then a water-filling clamp to the budget floor. Returns which live
/// lanes the floor clamp was binding for (the "at the floor" flags that
/// drive retirement).
fn reweight(
    lanes: &mut [Lane],
    scores: &[f64],
    hv: &[f64],
    cfg: &PortfolioConfig,
    explore: &mut Xoshiro256StarStar,
) -> Vec<bool> {
    let live: Vec<usize> = (0..lanes.len()).filter(|&i| lanes[i].live()).collect();
    let max_hv = live.iter().map(|&i| hv[i]).fold(0.0f64, f64::max);
    let mut soft: Vec<f64> = live
        .iter()
        .map(|&i| {
            let tiebreak = if max_hv > 0.0 {
                1e-3 * hv[i] / max_hv
            } else {
                0.0
            };
            (cfg.softmax_beta * (scores[i] + tiebreak)).exp()
        })
        .collect();
    let sum: f64 = soft.iter().sum();
    for s in &mut soft {
        *s /= sum;
    }
    // η-greedy: occasionally drag one lane back to the uniform share so a
    // slow starter can recover. Both draws happen every round in the same
    // order regardless of the outcome, keeping the RNG stream aligned.
    let boost = explore.bernoulli(cfg.eta);
    let pick = explore.index(live.len());
    if boost {
        let uniform = 1.0 / live.len() as f64;
        if soft[pick] < uniform {
            soft[pick] = uniform;
            let rest: f64 = soft.iter().sum::<f64>() - soft[pick];
            let scale = (1.0 - uniform) / rest;
            for (k, s) in soft.iter_mut().enumerate() {
                if k != pick {
                    *s *= scale;
                }
            }
        }
    }
    // Water-filling floor clamp: pin every lane the floor is binding for,
    // share the remainder proportionally among the rest, repeat until
    // stable. Terminates because the pinned set only grows.
    let floor_share = (cfg.floor / live.len() as f64).clamp(0.0, 1.0 / live.len() as f64);
    let mut pinned = vec![false; live.len()];
    loop {
        let free_mass: f64 = soft
            .iter()
            .zip(&pinned)
            .filter(|(_, p)| !**p)
            .map(|(s, _)| *s)
            .sum();
        let pinned_mass = floor_share * pinned.iter().filter(|p| **p).count() as f64;
        let mut changed = false;
        for k in 0..live.len() {
            if pinned[k] {
                continue;
            }
            let w = soft[k] / free_mass * (1.0 - pinned_mass);
            if w < floor_share {
                pinned[k] = true;
                changed = true;
            }
        }
        if !changed {
            let pinned_mass = floor_share * pinned.iter().filter(|p| **p).count() as f64;
            let free_mass: f64 = soft
                .iter()
                .zip(&pinned)
                .filter(|(_, p)| !**p)
                .map(|(s, _)| *s)
                .sum();
            for (k, &i) in live.iter().enumerate() {
                lanes[i].weight = if pinned[k] {
                    floor_share
                } else {
                    soft[k] / free_mass * (1.0 - pinned_mass)
                };
            }
            break;
        }
    }
    let mut at_floor = vec![false; lanes.len()];
    for (k, &i) in live.iter().enumerate() {
        at_floor[i] = pinned[k];
    }
    at_floor
}

/// Rescales the live weights to sum to one after a retirement.
fn renormalize(lanes: &mut [Lane]) {
    let sum: f64 = lanes.iter().filter(|l| l.live()).map(|l| l.weight).sum();
    if sum > 0.0 {
        for lane in lanes.iter_mut().filter(|l| l.live()) {
            lane.weight /= sum;
        }
    } else {
        let live = lanes.iter().filter(|l| l.live()).count().max(1);
        for lane in lanes.iter_mut().filter(|l| l.live()) {
            lane.weight = 1.0 / live as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{contender, RaceParams};
    use pareto::Dominance;
    use tsmo_obs::MemoryRecorder;
    use vrptw::generator::{GeneratorConfig, InstanceClass};

    fn build(names: &[&str]) -> Vec<Box<dyn RacedAlgorithm>> {
        let params = RaceParams {
            neighborhood_size: 20,
            population: 12,
            ..RaceParams::default()
        };
        names
            .iter()
            .map(|n| contender(n, &params).expect(n))
            .collect()
    }

    fn small_cfg() -> PortfolioConfig {
        PortfolioConfig {
            rounds: 3,
            total_evaluations: 4_500,
            seed: 7,
            ..PortfolioConfig::default()
        }
    }

    #[test]
    fn race_spends_the_budget_and_merges_a_valid_front() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::C1, 25, 5).build());
        let cfg = small_cfg();
        let out = Portfolio::new(cfg.clone()).run(
            &inst,
            build(&["tsmo-seq", "nsga2", "paes"]),
            tsmo_obs::noop(),
            CancelToken::never(),
        );
        assert_eq!(out.evaluations, cfg.total_evaluations);
        assert_eq!(out.ledger.len(), cfg.rounds as usize);
        for round in &out.ledger {
            let allocated: u64 = round.entries.iter().map(|e| e.allocated).sum();
            let spent: u64 = round.entries.iter().map(|e| e.spent).sum();
            assert_eq!(spent, allocated, "uncancelled slices spend exactly");
        }
        assert!(!out.merged.is_empty());
        // Merged front is mutually non-dominated.
        let nd = pareto::non_dominated_indices(&out.merged);
        assert_eq!(nd.len(), out.merged.len());
        // Stage-two merge never loses to a stage-one front: every
        // contender point is weakly dominated by some merged point.
        for report in &out.contenders {
            for entry in &report.front {
                assert!(
                    out.merged
                        .iter()
                        .any(|m| { pareto::weakly_dominates(m.objectives(), entry.objectives()) }),
                    "merged front dropped a non-dominated {} point",
                    report.name
                );
            }
        }
    }

    #[test]
    fn ledger_replays_byte_identically() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::RC1, 25, 5).build());
        let run = || {
            Portfolio::new(small_cfg()).run(
                &inst,
                build(&["tsmo-seq", "nsga2", "spea2"]),
                tsmo_obs::noop(),
                CancelToken::never(),
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.ledger_jsonl(), b.ledger_jsonl());
        assert_eq!(a.merged.len(), b.merged.len());
        for (x, y) in a.merged.iter().zip(&b.merged) {
            assert_eq!(x.objectives(), y.objectives());
            assert_eq!(x.solution, y.solution);
        }
    }

    #[test]
    fn scheduler_emits_the_portfolio_events_and_counters() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R1, 25, 5).build());
        let recorder = MemoryRecorder::shared();
        let out = Portfolio::new(small_cfg()).run(
            &inst,
            build(&["tsmo-seq", "nsga2"]),
            recorder.clone(),
            CancelToken::never(),
        );
        let jsonl = recorder.events_jsonl();
        assert!(jsonl.contains("\"type\":\"budget_reallocated\""));
        assert!(jsonl.contains("\"type\":\"round_scored\""));
        let snap = recorder.metrics();
        assert_eq!(
            snap.counter(names::PORTFOLIO_ROUNDS_SCORED),
            out.ledger
                .iter()
                .map(|r| r.entries.len() as u64)
                .sum::<u64>()
        );
        assert_eq!(snap.counter(names::PORTFOLIO_EVALUATIONS), out.evaluations);
    }

    #[test]
    fn cancellation_truncates_the_race() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R1, 25, 5).build());
        let cancel = CancelToken::never();
        cancel.cancel();
        let out = Portfolio::new(small_cfg()).run(
            &inst,
            build(&["tsmo-seq", "nsga2"]),
            tsmo_obs::noop(),
            cancel,
        );
        assert!(out.ledger.len() <= 1);
        assert!(out.evaluations < small_cfg().total_evaluations);
    }

    #[test]
    fn floor_keeps_every_live_contender_funded() {
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::C1, 25, 5).build());
        let cfg = PortfolioConfig {
            rounds: 4,
            total_evaluations: 8_000,
            retire_after: 0, // keep everyone live to observe the floor
            ..small_cfg()
        };
        let out = Portfolio::new(cfg.clone()).run(
            &inst,
            build(&["tsmo-seq", "nsga2", "paes"]),
            tsmo_obs::noop(),
            CancelToken::never(),
        );
        let floor_share = cfg.floor / 3.0;
        for round in &out.ledger {
            for e in &round.entries {
                assert!(
                    e.weight >= floor_share - 1e-12,
                    "round {} contender {} fell below the floor: {}",
                    round.round,
                    e.contender,
                    e.weight
                );
            }
        }
    }
}
