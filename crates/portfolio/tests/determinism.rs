//! The portfolio's reproducibility and quality contracts:
//!
//! * Equal `(seed, instance, algos)` replays the round-by-round budget
//!   ledger **byte for byte**, including a round where a contender is
//!   retired at the budget floor.
//! * The stage-two merged front is mutually non-dominated and is never
//!   covered (Zitzler C-metric = 1) by any individual algorithm given the
//!   same *total* evaluation budget in one standalone run.

use std::sync::Arc;
use tsmo_core::CancelToken;
use tsmo_portfolio::{contender, Portfolio, PortfolioConfig, RaceParams};
use vrptw::generator::{GeneratorConfig, InstanceClass};
use vrptw::Instance;

fn instance() -> Arc<Instance> {
    Arc::new(GeneratorConfig::new(InstanceClass::R1, 30, 7).build())
}

fn params() -> RaceParams {
    RaceParams {
        neighborhood_size: 25,
        population: 12,
        ..RaceParams::default()
    }
}

fn build(names: &[&str]) -> Vec<Box<dyn tsmo_portfolio::RacedAlgorithm>> {
    names
        .iter()
        .map(|n| contender(n, &params()).expect(n))
        .collect()
}

/// A greedy race: high softmax temperature, low floor, no exploration,
/// one-round retirement patience — engineered so the weakest contender
/// decays to the floor and is retired mid-race.
fn greedy_cfg() -> PortfolioConfig {
    PortfolioConfig {
        rounds: 5,
        total_evaluations: 7_500,
        seed: 13,
        floor: 0.1,
        eta: 0.0,
        softmax_beta: 8.0,
        retire_after: 1,
        ..PortfolioConfig::default()
    }
}

#[test]
fn the_budget_ledger_replays_byte_identically_through_a_retirement() {
    let inst = instance();
    let algos = ["tsmo-seq", "tsmo-collab", "paes"];
    let run = || {
        Portfolio::new(greedy_cfg()).run(
            &inst,
            build(&algos),
            tsmo_obs::noop(),
            CancelToken::never(),
        )
    };
    let first = run();
    // The engineered race must actually exercise the retirement path,
    // otherwise the replay check proves less than it claims.
    assert!(
        first.ledger.iter().any(|r| !r.retired.is_empty()),
        "no contender was retired; ledger:\n{}",
        first.ledger_jsonl()
    );
    let retired_at = first.ledger.iter().find(|r| !r.retired.is_empty()).unwrap();
    let gone = retired_at.retired[0];
    // A retired contender receives no further slices.
    for later in first.ledger.iter().filter(|r| r.round > retired_at.round) {
        assert!(
            later.entries.iter().all(|e| e.contender != gone),
            "retired contender {gone} re-entered round {}",
            later.round
        );
    }
    // The contender was pinned at the floor when it was retired.
    let live = retired_at.entries.len() as f64;
    let floor_share = greedy_cfg().floor / live;
    let row = retired_at
        .entries
        .iter()
        .find(|e| e.contender == gone)
        .expect("retired contender has a ledger row in its final round");
    assert!(
        row.weight <= floor_share * (1.0 + 1e-9) || row.weight <= 1.0 / live,
        "retired contender was not decaying: weight {}",
        row.weight
    );

    let second = run();
    assert_eq!(
        first.ledger_jsonl(),
        second.ledger_jsonl(),
        "equal (seed, instance, algos) must replay the ledger byte for byte"
    );
    assert_eq!(first.merged.len(), second.merged.len());
    for (a, b) in first.merged.iter().zip(&second.merged) {
        assert_eq!(
            pareto::Dominance::objectives(a),
            pareto::Dominance::objectives(b)
        );
        assert_eq!(a.solution, b.solution);
    }
}

#[test]
fn different_seeds_change_the_race_but_not_its_accounting() {
    let inst = instance();
    let mut cfg = greedy_cfg();
    cfg.seed = 14;
    let other = Portfolio::new(cfg).run(
        &inst,
        build(&["tsmo-seq", "tsmo-collab", "paes"]),
        tsmo_obs::noop(),
        CancelToken::never(),
    );
    // Budget conservation holds for every seed: each round's allocation
    // sums to the round budget, and every contender spends its slice
    // exactly — except tsmo-collab, which splits the slice across its
    // searchers and may strand a remainder smaller than the searcher
    // count.
    let searchers = params().processors as u64;
    let total = greedy_cfg().total_evaluations;
    assert!(other.evaluations <= total);
    assert!(
        total - other.evaluations < searchers * other.ledger.len() as u64,
        "unspent budget {} exceeds per-round collab rounding",
        total - other.evaluations
    );
    for round in &other.ledger {
        for e in &round.entries {
            assert!(e.spent <= e.allocated, "{} overspent", e.contender);
            if e.algo == "tsmo-collab" {
                assert!(e.allocated - e.spent < searchers);
            } else {
                assert_eq!(e.allocated, e.spent, "{} left budget unspent", e.contender);
            }
        }
    }
}

#[test]
fn the_merged_front_is_never_covered_by_a_standalone_arm_at_equal_budget() {
    let inst = instance();
    let algos = ["tsmo-seq", "nsga2", "spea2"];
    let cfg = PortfolioConfig {
        rounds: 3,
        total_evaluations: 6_000,
        seed: 5,
        ..PortfolioConfig::default()
    };
    let race = Portfolio::new(cfg.clone()).run(
        &inst,
        build(&algos),
        tsmo_obs::noop(),
        CancelToken::never(),
    );
    // Sanity: merged front valid and mutually non-dominated.
    assert!(!race.merged.is_empty());
    assert_eq!(
        pareto::non_dominated_indices(&race.merged).len(),
        race.merged.len()
    );
    // Each standalone arm gets the race's ENTIRE budget in one run —
    // strictly more than its share inside the race — and still must not
    // cover the merged front.
    for name in algos {
        let mut solo = contender(name, &params()).unwrap();
        solo.run_slice(
            &inst,
            cfg.total_evaluations,
            cfg.seed,
            &CancelToken::never(),
        );
        let covered = pareto::coverage(solo.front(), &race.merged);
        assert!(
            covered < 1.0,
            "standalone {name} covers the merged front (C = {covered})"
        );
        // And the merge holds its own: it covers each arm at least as
        // much as the arm covers it.
        let covers = pareto::coverage(&race.merged, solo.front());
        assert!(
            covers >= covered,
            "standalone {name} out-covers the merged front ({covers} < {covered})"
        );
    }
}
