//! Deterministic random number generation for reproducible experiments.
//!
//! The experiment harness in this workspace must produce identical runs for
//! identical seeds across platforms and library versions, so the small set of
//! generators we need is implemented here rather than depending on an external
//! RNG crate whose streams may change between releases.
//!
//! Provided generators:
//!
//! * [`SplitMix64`] — the seeding/stream-splitting generator recommended by
//!   Vigna for initializing xoshiro state.
//! * [`Xoshiro256StarStar`] — the main generator (xoshiro256**), a fast
//!   all-purpose PRNG with 256 bits of state and a `jump` function for
//!   creating non-overlapping parallel streams.
//!
//! On top of the raw generators, [`Rng`] offers the distribution helpers the
//! metaheuristics need: uniform integers and floats, ranges, Bernoulli draws,
//! normally distributed values (Box–Muller), shuffles, and weighted choice.
//!
//! # Example
//!
//! ```
//! use detrand::{Rng, Xoshiro256StarStar, streams};
//!
//! let mut rng = Xoshiro256StarStar::seed_from_u64(42);
//! let roll = rng.range_u64(1, 7);
//! assert!((1..7).contains(&roll));
//!
//! // Non-overlapping streams for parallel workers:
//! let workers = streams(42, 4);
//! assert_eq!(workers.len(), 4);
//! ```

mod splitmix;
mod xoshiro;

pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256StarStar;

/// The default generator used throughout the workspace.
pub type DefaultRng = Xoshiro256StarStar;

/// A source of raw 64-bit random words.
pub trait RandomSource {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Distribution helpers layered over any [`RandomSource`].
///
/// All methods are provided; implementors only supply [`RandomSource`].
pub trait Rng: RandomSource {
    /// A uniformly distributed `f64` in `[0, 1)`.
    ///
    /// Uses the 53 high bits of the next word, the standard construction that
    /// yields every representable multiple of 2⁻⁵³ with equal probability.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniformly distributed integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a positive bound");
        // Lemire 2018: "Fast Random Integer Generation in an Interval".
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniformly distributed `usize` index in `[0, len)`.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    fn index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// A uniformly distributed integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range_u64 requires lo < hi");
        lo + self.next_below(hi - lo)
    }

    /// A uniformly distributed `f64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is not finite.
    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        lo + self.next_f64() * (hi - lo)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A normally distributed value with the given mean and standard
    /// deviation, generated with the Box–Muller transform.
    ///
    /// The paper's collaborative variant perturbs every searcher's parameters
    /// with `N(0, param/4)`; this is the primitive behind that.
    fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        // Box–Muller: two uniforms -> one normal (the second is discarded to
        // keep the generator stateless; throughput is irrelevant here).
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * r * (std::f64::consts::TAU * u2).cos()
    }

    /// Fisher–Yates shuffle of the slice, in place.
    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// A uniformly chosen reference into the slice, or `None` if empty.
    fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }

    /// Chooses an index according to the non-negative `weights`.
    ///
    /// Returns `None` if the weights sum to zero (or the slice is empty).
    fn choose_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|&w| w > 0.0)
    }
}

impl<T: RandomSource + ?Sized> Rng for T {}

/// Derives `n` independent seeded generators from a root seed.
///
/// Each stream is produced by jumping the root generator, which guarantees
/// the streams are non-overlapping for at least 2¹²⁸ draws each — the
/// mechanism used to hand each parallel worker or searcher its own stream.
pub fn streams(seed: u64, n: usize) -> Vec<Xoshiro256StarStar> {
    let mut root = Xoshiro256StarStar::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(root.clone());
        root.jump();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_in_range_and_hits_all_values() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(42);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic]
    fn next_below_zero_panics() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        rng.next_below(0);
    }

    #[test]
    fn range_u64_respects_bounds() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        for _ in 0..1_000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn range_f64_respects_bounds() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        for _ in 0..1_000 {
            let v = rng.range_f64(-2.5, 2.5);
            assert!((-2.5..2.5).contains(&v));
        }
    }

    #[test]
    fn normal_mean_and_spread_are_plausible() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(99);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle should move things"
        );
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        assert_eq!(rng.choose::<u8>(&[]), None);
    }

    #[test]
    fn choose_weighted_zero_weights() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        assert_eq!(rng.choose_weighted(&[0.0, 0.0]), None);
        assert_eq!(rng.choose_weighted(&[]), None);
    }

    #[test]
    fn choose_weighted_respects_weights() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.choose_weighted(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn streams_are_distinct_and_deterministic() {
        let mut a = streams(123, 4);
        let mut b = streams(123, 4);
        for (x, y) in a.iter_mut().zip(b.iter_mut()) {
            assert_eq!(x.next_u64(), y.next_u64());
        }
        let mut again = streams(123, 4);
        let first: Vec<u64> = again.iter_mut().map(|r| r.next_u64()).collect();
        assert_eq!(first.len(), 4);
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(first[i], first[j], "streams {i} and {j} collide");
            }
        }
    }
}
