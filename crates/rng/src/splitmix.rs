//! SplitMix64, Vigna's recommended generator for seeding larger-state PRNGs.

use crate::RandomSource;

/// The SplitMix64 generator.
///
/// A tiny 64-bit-state generator that passes BigCrush. It is used here to
/// expand a single `u64` seed into the 256-bit state of
/// [`Xoshiro256StarStar`](crate::Xoshiro256StarStar), and is exposed publicly
/// because it is occasionally handy as a throwaway generator in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from the given seed. Every seed is valid.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl RandomSource for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        // Reference implementation: https://prng.di.unimi.it/splitmix64.c
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden values computed with the reference C implementation
    /// (splitmix64.c, seed = 1234567).
    #[test]
    fn matches_reference_implementation() {
        let mut g = SplitMix64::new(1234567);
        let expected: [u64; 5] = [
            6457827717110365317,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for e in expected {
            assert_eq!(g.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut g = SplitMix64::new(0);
        // Must not get stuck at zero.
        let a = g.next_u64();
        let b = g.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
