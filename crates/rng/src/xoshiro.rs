//! xoshiro256** — the workspace's default pseudo-random generator.

use crate::{RandomSource, SplitMix64};

/// The xoshiro256** generator of Blackman & Vigna.
///
/// 256 bits of state, period 2²⁵⁶ − 1, passes BigCrush, and supports a
/// [`jump`](Self::jump) of 2¹²⁸ steps for carving out non-overlapping
/// parallel substreams — exactly what the parallel tabu-search variants need
/// to give each worker an independent stream from one experiment seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator from a full 256-bit state.
    ///
    /// # Panics
    /// Panics if the state is all zeros (the one invalid state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
        Self { s }
    }

    /// Seeds the 256-bit state by running SplitMix64 on `seed`, the
    /// initialization recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Advances the generator by 2¹²⁸ steps.
    ///
    /// Calling `jump` repeatedly generates up to 2¹²⁸ starting points, each a
    /// distance of 2¹²⁸ draws apart, so parallel streams derived this way
    /// never overlap in practice.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180ec6d33cfd0aba,
            0xd5a61266f0c9392c,
            0xa9582618e03fc9aa,
            0x39abdc4529b1661c,
        ];
        let mut acc = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if j & (1 << b) != 0 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }
}

impl RandomSource for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        // Reference implementation: https://prng.di.unimi.it/xoshiro256starstar.c
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden values computed with the reference C implementation seeded via
    /// SplitMix64(42), matching `seed_from_u64(42)`.
    #[test]
    fn matches_reference_implementation() {
        let mut g = Xoshiro256StarStar::seed_from_u64(42);
        let expected: [u64; 5] = [
            1546998764402558742,
            6990951692964543102,
            12544586762248559009,
            17057574109182124193,
            18295552978065317476,
        ];
        for e in expected {
            assert_eq!(g.next_u64(), e);
        }
    }

    /// Golden values for the jump function (reference C, seed 42, one jump).
    #[test]
    fn jump_matches_reference_implementation() {
        let mut g = Xoshiro256StarStar::seed_from_u64(42);
        g.jump();
        let expected: [u64; 3] = [
            5766981335298035530,
            13414075677763163907,
            6818771422820058410,
        ];
        for e in expected {
            assert_eq!(g.next_u64(), e);
        }
    }

    #[test]
    fn jump_streams_do_not_repeat_prefix() {
        let mut a = Xoshiro256StarStar::seed_from_u64(7);
        let mut b = a.clone();
        b.jump();
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    #[should_panic]
    fn all_zero_state_rejected() {
        Xoshiro256StarStar::from_state([0; 4]);
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = Xoshiro256StarStar::seed_from_u64(1);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
