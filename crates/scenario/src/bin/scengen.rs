//! Extended-Solomon instance generator CLI.
//!
//! ```text
//! scengen --class R1 --customers 200 --seed 7 --out r1-200.txt
//! scengen --class C2 --customers 100 --check-solve 500
//! ```
//!
//! Without `--out` the instance text goes to stdout. `--check-solve N`
//! additionally parses the emitted text back, runs a sequential search
//! for `N` evaluations, and exits non-zero unless the result is a valid,
//! mutually non-dominated front — the end-to-end smoke CI runs.

use pareto::non_dominated_indices;
use std::process::ExitCode;
use std::sync::Arc;
use tsmo_core::{ParallelVariant, TsmoConfig};
use tsmo_scenario::{parse_class, Generator};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let class_s = get("--class").unwrap_or_else(|| "R1".to_string());
    let Some(class) = parse_class(&class_s) else {
        eprintln!("scengen: unknown class {class_s:?} (use C1/C2/R1/R2/RC1/RC2)");
        return ExitCode::FAILURE;
    };
    let customers: usize = get("--customers").map_or(100, |s| s.parse().expect("--customers"));
    let seed: u64 = get("--seed").map_or(0, |s| s.parse().expect("--seed"));
    let check_solve: Option<u64> = get("--check-solve").map(|s| s.parse().expect("--check-solve"));

    let text = Generator::new(seed, class, customers).text();
    match get("--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("scengen: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "scengen: wrote {} ({} customers, class {}) to {path}",
                format_args!("{}_{}_s{}", class.label(), customers, seed),
                customers,
                class.label()
            );
        }
        None => print!("{text}"),
    }

    let Some(evals) = check_solve else {
        return ExitCode::SUCCESS;
    };
    // Round-trip through the parser exactly like the server would.
    let inst = match vrptw::solomon::parse(&text) {
        Ok(i) => Arc::new(i),
        Err(e) => {
            eprintln!("scengen: emitted text does not parse back: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = TsmoConfig {
        max_evaluations: evals,
        seed,
        ..TsmoConfig::default()
    };
    let out = ParallelVariant::Sequential.run(&inst, &cfg);
    if out.archive.is_empty() {
        eprintln!("scengen: check-solve produced an empty archive");
        return ExitCode::FAILURE;
    }
    for e in &out.archive {
        let problems = e.solution.check(&inst);
        if !problems.is_empty() {
            eprintln!("scengen: invalid front solution: {}", problems[0]);
            return ExitCode::FAILURE;
        }
    }
    if non_dominated_indices(&out.archive).len() != out.archive.len() {
        eprintln!("scengen: front is not mutually non-dominated");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "scengen: check-solve ok — {} evaluations, front size {}",
        out.evaluations,
        out.archive.len()
    );
    ExitCode::SUCCESS
}
