//! Epoch driver for dynamic re-optimization jobs.
//!
//! Runs a [`ScenarioScript`] as a sequence of searches: each epoch solves
//! the script's instance for that epoch with the configured variant and
//! per-epoch evaluation budget. With warm-starting enabled the previous
//! epoch's front is carried over: every elite is repaired against the
//! mutated instance ([`crate::repair()`]), the repaired pool feeds a
//! [`tsmo_core::AdaptiveMemory`] route pool (§I refs \[8\]\[9\]) whose
//! rank-weighted samples add recombined seeds, and the result becomes
//! [`TsmoConfig::warm_start`] for the next search. Cold runs take the
//! identical code path with an empty pool, so warm-vs-cold comparisons at
//! equal budget differ *only* in the starting solutions — the study
//! `dynbench` records into `BENCH_dynamic.json`.

use crate::repair::repair;
use crate::script::ScenarioScript;
use detrand::Xoshiro256StarStar;
use std::sync::Arc;
use tsmo_core::{scalarize, AdaptiveMemory, CancelToken, ParallelVariant, TsmoConfig, TsmoOutcome};
use vrptw::{evaluate_route, Instance, Solution};

/// How a dynamic job runs its epochs.
#[derive(Debug, Clone)]
pub struct DynamicConfig {
    /// Search variant used for every epoch.
    pub variant: ParallelVariant,
    /// Per-epoch search configuration; `max_evaluations` is the budget of
    /// *each* epoch and `seed` the base the per-epoch seeds derive from.
    pub cfg: TsmoConfig,
    /// Warm-start from the previous epoch's repaired front (`false` =
    /// cold construction every epoch, the control arm).
    pub warm: bool,
    /// Elites carried between epochs (best by the adaptive-memory
    /// scalarization after repair).
    pub elites: usize,
    /// Route-pool capacity of the adaptive memory.
    pub pool_capacity: usize,
    /// Recombined solutions sampled from the adaptive memory and added to
    /// the warm-start pool on top of the repaired elites.
    pub samples: usize,
}

impl DynamicConfig {
    /// A dynamic configuration with the defaults used by the server and
    /// `dynbench`: 8 elites, 100 pooled routes, 4 sampled recombinations.
    pub fn new(variant: ParallelVariant, cfg: TsmoConfig) -> Self {
        Self {
            variant,
            cfg,
            warm: true,
            elites: 8,
            pool_capacity: 100,
            samples: 4,
        }
    }
}

/// One epoch's result.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// Epoch index (0 = base instance).
    pub epoch: usize,
    /// Mutations applied before this epoch.
    pub mutations: usize,
    /// Warm-start solutions this epoch's searchers were seeded with.
    pub warm_seeds: usize,
    /// Customers of this epoch's instance.
    pub customers: usize,
    /// The search outcome (archive, evaluations, runtime).
    pub outcome: TsmoOutcome,
}

/// The seed epoch `epoch` searches with, derived from the job seed so
/// warm and cold arms of a comparison draw identical randomness.
pub fn epoch_seed(seed: u64, epoch: usize) -> u64 {
    seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs `script` on `base` as re-optimization epochs (see module docs).
///
/// `initial_pool` seeds epoch 0's warm start (the server passes the
/// cached front of the same instance content-hash when one exists; pass
/// an empty vec for a fresh start). The cancel token is checked between
/// epochs and inside every search, so a cancelled job returns the epochs
/// finished so far plus one truncated search.
pub fn run_dynamic(
    base: &Instance,
    script: &ScenarioScript,
    dc: &DynamicConfig,
    initial_pool: Vec<Solution>,
    recorder: Arc<dyn tsmo_obs::Recorder>,
    cancel: CancelToken,
) -> Vec<EpochOutcome> {
    let instances = script.instances(base);
    let mut pool = initial_pool;
    let mut out = Vec::with_capacity(instances.len());
    for (epoch, inst) in instances.iter().enumerate() {
        if cancel.cause().is_some() {
            break;
        }
        let mut cfg = dc.cfg.clone();
        cfg.seed = epoch_seed(dc.cfg.seed, epoch);
        if dc.warm {
            cfg.warm_start = warm_pool(&pool, inst, dc, cfg.seed);
        }
        let warm_seeds = cfg.warm_start.len();
        let inst_arc = Arc::new(inst.clone());
        let outcome = dc.variant.run_with_cancel(
            &inst_arc,
            &cfg,
            Arc::clone(&recorder),
            tsmo_faults::none(),
            cancel.clone(),
        );
        pool = outcome.archive.iter().map(|e| e.solution.clone()).collect();
        let mutations = if epoch == 0 {
            0
        } else {
            script.batches[epoch - 1].mutations.len()
        };
        out.push(EpochOutcome {
            epoch,
            mutations,
            warm_seeds,
            customers: inst.n_customers(),
            outcome,
        });
    }
    out
}

/// Builds the warm-start pool for one epoch: repaired elites ranked by
/// the adaptive-memory scalarization, plus recombined samples drawn from
/// an [`AdaptiveMemory`] absorbing them.
fn warm_pool(pool: &[Solution], inst: &Instance, dc: &DynamicConfig, seed: u64) -> Vec<Solution> {
    let mut repaired: Vec<(Solution, f64)> = pool
        .iter()
        .filter_map(|s| repair(s, inst))
        .map(|s| {
            let v = scalarize(s.evaluate(inst));
            (s, v)
        })
        .collect();
    repaired.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("scalarizations are not NaN"));
    repaired.truncate(dc.elites.max(1));
    let mut warm: Vec<Solution> = repaired.iter().map(|(s, _)| s.clone()).collect();
    if !warm.is_empty() && dc.samples > 0 {
        let mut memory = AdaptiveMemory::new(dc.pool_capacity.max(1));
        for (s, v) in &repaired {
            memory.absorb(s, *v);
        }
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed ^ 0xADA7_5EED);
        for _ in 0..dc.samples {
            let s = memory.sample_solution(inst, &mut rng);
            // The sampler's last-resort insertion may overload a route;
            // warm starts must be capacity-feasible members of the space.
            let feasible = s
                .routes()
                .iter()
                .all(|r| evaluate_route(inst, r).load <= inst.capacity() + 1e-9);
            if feasible && s.check(inst).is_empty() {
                warm.push(s);
            }
        }
    }
    warm
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrptw::generator::{GeneratorConfig, InstanceClass};

    fn small_cfg(seed: u64) -> TsmoConfig {
        TsmoConfig {
            max_evaluations: 800,
            neighborhood_size: 40,
            seed,
            ..TsmoConfig::default()
        }
    }

    #[test]
    fn runs_every_epoch_with_valid_fronts() {
        let base = GeneratorConfig::new(InstanceClass::R1, 30, 13).build();
        let script = ScenarioScript::generate(&base, 17, 3, 4);
        let dc = DynamicConfig::new(ParallelVariant::Sequential, small_cfg(5));
        let out = run_dynamic(
            &base,
            &script,
            &dc,
            Vec::new(),
            tsmo_obs::noop(),
            CancelToken::never(),
        );
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].warm_seeds, 0, "no pool yet at epoch 0");
        for e in &out[1..] {
            assert!(e.warm_seeds > 0, "epoch {} should be warm-started", e.epoch);
        }
        let seq = script.instances(&base);
        for (e, inst) in out.iter().zip(&seq) {
            assert_eq!(e.outcome.evaluations, 800);
            assert!(!e.outcome.archive.is_empty());
            for entry in &e.outcome.archive {
                assert!(entry.solution.check(inst).is_empty(), "epoch {}", e.epoch);
            }
        }
    }

    #[test]
    fn cold_runs_are_deterministic_and_ignore_the_pool_flag() {
        let base = GeneratorConfig::new(InstanceClass::C2, 25, 3).build();
        let script = ScenarioScript::generate(&base, 9, 2, 3);
        let mut dc = DynamicConfig::new(ParallelVariant::Sequential, small_cfg(7));
        dc.warm = false;
        let a = run_dynamic(
            &base,
            &script,
            &dc,
            Vec::new(),
            tsmo_obs::noop(),
            CancelToken::never(),
        );
        let b = run_dynamic(
            &base,
            &script,
            &dc,
            Vec::new(),
            tsmo_obs::noop(),
            CancelToken::never(),
        );
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.outcome.evaluations, y.outcome.evaluations);
            assert_eq!(x.outcome.archive.len(), y.outcome.archive.len());
            for (ea, eb) in x.outcome.archive.iter().zip(&y.outcome.archive) {
                assert_eq!(ea.solution, eb.solution);
            }
            assert_eq!(x.warm_seeds, 0);
        }
    }

    #[test]
    fn warm_and_cold_spend_the_same_budget() {
        let base = GeneratorConfig::new(InstanceClass::RC2, 25, 8).build();
        let script = ScenarioScript::generate(&base, 4, 3, 3);
        let warm = DynamicConfig::new(ParallelVariant::Sequential, small_cfg(2));
        let mut cold = warm.clone();
        cold.warm = false;
        let w = run_dynamic(
            &base,
            &script,
            &warm,
            Vec::new(),
            tsmo_obs::noop(),
            CancelToken::never(),
        );
        let c = run_dynamic(
            &base,
            &script,
            &cold,
            Vec::new(),
            tsmo_obs::noop(),
            CancelToken::never(),
        );
        for (x, y) in w.iter().zip(&c) {
            assert_eq!(x.outcome.evaluations, y.outcome.evaluations);
        }
    }

    #[test]
    fn cancellation_truncates_the_epoch_sequence() {
        let base = GeneratorConfig::new(InstanceClass::R2, 25, 6).build();
        let script = ScenarioScript::generate(&base, 3, 4, 3);
        let dc = DynamicConfig::new(ParallelVariant::Sequential, small_cfg(1));
        let cancel = CancelToken::never();
        cancel.cancel();
        let out = run_dynamic(&base, &script, &dc, Vec::new(), tsmo_obs::noop(), cancel);
        assert!(out.is_empty());
    }
}
