//! Text-emitting front end of the extended-Solomon generator.
//!
//! [`vrptw::generator`] synthesizes the *instance object*; this wrapper
//! fixes the missing half of the pipeline: the **text form**. Everything
//! downstream of generation — the Solomon parser, the server's
//! content-hash `InstanceCache`, the mesh's `run_mesh_job`
//! re-serialization — speaks the text format, so the scenario layer
//! always materializes instances as text first and lets the existing
//! parser produce the object. Output is byte-identical per
//! `(seed, class, n)` (pinned by `tests/proptests.rs`).

use vrptw::generator::{GeneratorConfig, InstanceClass};
use vrptw::{solomon, Instance};

/// Deterministic extended-Solomon instance source.
///
/// ```
/// use tsmo_scenario::Generator;
/// use vrptw::generator::InstanceClass;
///
/// let g = Generator::new(7, InstanceClass::R1, 100);
/// let text = g.text();
/// let inst = vrptw::solomon::parse(&text).unwrap();
/// assert_eq!(inst.n_customers(), 100);
/// assert_eq!(text, Generator::new(7, InstanceClass::R1, 100).text());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Generator {
    cfg: GeneratorConfig,
}

impl Generator {
    /// A generator for `n` customers of `class`, fully determined by
    /// `(seed, class, n)`.
    pub fn new(seed: u64, class: InstanceClass, n: usize) -> Self {
        Self {
            cfg: GeneratorConfig::new(class, n, seed),
        }
    }

    /// The generated instance object.
    ///
    /// # Panics
    /// Panics if `n == 0` (propagated from [`GeneratorConfig::build`]).
    pub fn instance(&self) -> Instance {
        self.cfg.build()
    }

    /// The generated instance in Solomon text format — the canonical form
    /// every other subsystem (parser, cache, wire) consumes.
    pub fn text(&self) -> String {
        solomon::write(&self.instance())
    }
}

/// Parses a class label (`"R1"`, `"rc2"`, …) as used by the CLI flags of
/// `scengen`, `loadgen --instance-class`, and `servectl submit-dynamic`.
pub fn parse_class(s: &str) -> Option<InstanceClass> {
    let up = s.to_ascii_uppercase();
    InstanceClass::ALL.into_iter().find(|c| c.label() == up)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_parses_back_to_the_same_instance() {
        let g = Generator::new(3, InstanceClass::RC1, 60);
        let direct = g.instance();
        let parsed = solomon::parse(&g.text()).unwrap();
        assert_eq!(parsed.n_sites(), direct.n_sites());
        assert_eq!(parsed.capacity(), direct.capacity());
        assert_eq!(parsed.max_vehicles(), direct.max_vehicles());
        for i in 0..direct.n_sites() as u16 {
            let (a, b) = (direct.site(i), parsed.site(i));
            assert!((a.x - b.x).abs() < 1e-12, "site {i}");
            assert!((a.ready - b.ready).abs() < 1e-12, "site {i}");
            assert!((a.due - b.due).abs() < 1e-12, "site {i}");
        }
    }

    #[test]
    fn class_labels_round_trip() {
        for c in InstanceClass::ALL {
            assert_eq!(parse_class(c.label()), Some(c));
            assert_eq!(parse_class(&c.label().to_lowercase()), Some(c));
        }
        assert_eq!(parse_class("Q9"), None);
    }
}
