//! Scenario layer: extended-Solomon instance generation, dynamic
//! re-optimization workloads, and adaptive-memory warm-starts.
//!
//! The paper's §IV evaluates on the extended Solomon benchmark; its §V
//! future work and the adaptive-memory references of §I (\[8\], \[9\]) point
//! at *changing* workloads. This crate packages both directions on top of
//! the existing substrate:
//!
//! * [`Generator`] — a thin, text-emitting wrapper around
//!   [`vrptw::generator`]: `(seed, class, n)` deterministically yields an
//!   instance **and** its Solomon-format serialization, so the parser,
//!   the server's `InstanceCache`, and the mesh wire format work on
//!   generated instances unchanged (`scengen` is the CLI front end);
//! * [`Mutation`] / [`ScenarioScript`] — typed instance mutations
//!   (customer arrival, time-window shift, demand change, vehicle
//!   dropout) and seeded, batched scripts of them, turning one instance
//!   into a deterministic sequence of re-optimization *epochs*;
//! * [`repair()`] / [`dynamic`] — elite repair against a mutated instance
//!   and the epoch driver that warm-starts each epoch from the previous
//!   epoch's front through a [`tsmo_core::AdaptiveMemory`] route pool,
//!   instead of constructing from scratch.

pub mod dynamic;
pub mod generator;
pub mod mutation;
pub mod repair;
pub mod script;

pub use dynamic::{run_dynamic, DynamicConfig, EpochOutcome};
pub use generator::{parse_class, Generator};
pub use mutation::{Mutation, MutationError};
pub use repair::repair;
pub use script::{MutationBatch, ScenarioScript};
