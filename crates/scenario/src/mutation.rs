//! Typed instance mutations for dynamic re-optimization.
//!
//! Each [`Mutation`] is a pure `apply(&Instance) -> Instance` step: the
//! instance is immutable everywhere else in the workspace (shared via
//! `Arc` across searchers and the server cache), so a mutation builds a
//! *new* instance and the epoch driver re-keys caches by its content
//! hash. Customers are only ever **added** — site ids stay stable across
//! an entire scenario, which is what makes repairing a previous epoch's
//! solutions ([`crate::repair()`]) a local operation.

use vrptw::{Customer, Instance, SiteId};

/// One atomic change to a live instance.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// A new customer calls in; it gets the next free site id.
    CustomerArrival {
        /// Location and order data of the arriving customer.
        customer: Customer,
    },
    /// A customer's service window moves by `delta` (both ends, clamped
    /// to `[0, horizon]` keeping `ready <= due`).
    TimeWindowShift {
        /// The affected customer.
        customer: SiteId,
        /// Shift in time units; negative moves the window earlier.
        delta: f64,
    },
    /// A customer's demand changes by `delta` (clamped to
    /// `[1, capacity]`); the fleet grows if total demand requires it.
    DemandChange {
        /// The affected customer.
        customer: SiteId,
        /// Demand delta; negative shrinks the order.
        delta: f64,
    },
    /// `count` vehicles break down and leave the fleet.
    VehicleDropout {
        /// Vehicles removed from the fleet limit.
        count: usize,
    },
}

/// Why a mutation cannot be applied to an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationError {
    /// The referenced site id is not a customer of the instance.
    UnknownCustomer(SiteId),
    /// A vehicle dropout would leave the fleet unable to carry the total
    /// demand (or empty).
    NoVehiclesLeft,
    /// The mutated instance failed [`Instance::validate`].
    InvalidResult(String),
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutationError::UnknownCustomer(c) => write!(f, "unknown customer {c}"),
            MutationError::NoVehiclesLeft => {
                write!(f, "dropout would leave too few vehicles for the demand")
            }
            MutationError::InvalidResult(p) => write!(f, "mutated instance invalid: {p}"),
        }
    }
}

impl std::error::Error for MutationError {}

impl Mutation {
    /// Stable lower-case kind name (CLI output, epoch reports).
    pub fn kind(&self) -> &'static str {
        match self {
            Mutation::CustomerArrival { .. } => "customer_arrival",
            Mutation::TimeWindowShift { .. } => "time_window_shift",
            Mutation::DemandChange { .. } => "demand_change",
            Mutation::VehicleDropout { .. } => "vehicle_dropout",
        }
    }

    /// Applies the mutation, returning the mutated instance.
    ///
    /// # Errors
    /// [`MutationError`] when the mutation references a customer the
    /// instance does not have, would strand demand without a fleet, or
    /// would produce an instance that fails [`Instance::validate`].
    pub fn apply(&self, inst: &Instance) -> Result<Instance, MutationError> {
        let mut sites: Vec<Customer> = (0..inst.n_sites())
            .map(|i| *inst.site(i as SiteId))
            .collect();
        let capacity = inst.capacity();
        let mut max_vehicles = inst.max_vehicles();
        let horizon = inst.horizon();

        match *self {
            Mutation::CustomerArrival { customer } => {
                if sites.len() >= SiteId::MAX as usize {
                    return Err(MutationError::InvalidResult("site id space full".into()));
                }
                let mut c = customer;
                c.demand = c.demand.clamp(1.0, capacity);
                c.service = c.service.max(0.0);
                c.ready = c.ready.clamp(0.0, horizon);
                c.due = c.due.clamp(c.ready, horizon);
                sites.push(c);
            }
            Mutation::TimeWindowShift { customer, delta } => {
                let c = site_mut(&mut sites, customer)?;
                let width = c.due - c.ready;
                c.ready = (c.ready + delta).clamp(0.0, horizon);
                c.due = (c.ready + width).min(horizon).max(c.ready);
            }
            Mutation::DemandChange { customer, delta } => {
                let c = site_mut(&mut sites, customer)?;
                c.demand = (c.demand + delta).clamp(1.0, capacity);
            }
            Mutation::VehicleDropout { count } => {
                let total: f64 = sites[1..].iter().map(|c| c.demand).sum();
                let floor = ((total / capacity).ceil() as usize).max(1);
                if max_vehicles <= floor {
                    return Err(MutationError::NoVehiclesLeft);
                }
                max_vehicles = max_vehicles.saturating_sub(count.max(1)).max(floor);
            }
        }

        // Arrivals and demand growth may push total demand past the fleet;
        // grow the fleet like the generator does rather than reject.
        let total: f64 = sites[1..].iter().map(|c| c.demand).sum();
        let demand_min = ((total / capacity).ceil() as usize).max(1);
        max_vehicles = max_vehicles.max(demand_min);

        let out = Instance::new(inst.name.clone(), sites, capacity, max_vehicles);
        if let Some(p) = out.validate().first() {
            return Err(MutationError::InvalidResult(p.clone()));
        }
        Ok(out)
    }
}

fn site_mut(sites: &mut [Customer], id: SiteId) -> Result<&mut Customer, MutationError> {
    if id == 0 || (id as usize) >= sites.len() {
        return Err(MutationError::UnknownCustomer(id));
    }
    Ok(&mut sites[id as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrptw::generator::{GeneratorConfig, InstanceClass};

    fn base() -> Instance {
        GeneratorConfig::new(InstanceClass::R1, 30, 5).build()
    }

    #[test]
    fn arrival_appends_a_valid_customer() {
        let inst = base();
        let m = Mutation::CustomerArrival {
            customer: Customer {
                x: 10.0,
                y: 20.0,
                demand: 400.0, // clamped to capacity
                ready: -5.0,   // clamped to 0
                due: 1e9,      // clamped to horizon
                service: 10.0,
            },
        };
        let out = m.apply(&inst).unwrap();
        assert_eq!(out.n_customers(), inst.n_customers() + 1);
        let c = out.site(out.n_customers() as SiteId);
        assert_eq!(c.demand, inst.capacity());
        assert_eq!(c.ready, 0.0);
        assert_eq!(c.due, out.horizon());
        assert!(out.validate().is_empty());
        // The original is untouched.
        assert_eq!(inst.n_customers(), 30);
    }

    #[test]
    fn window_shift_preserves_width_when_inside_horizon() {
        let inst = base();
        let before = *inst.site(3);
        let m = Mutation::TimeWindowShift {
            customer: 3,
            delta: 5.0,
        };
        let out = m.apply(&inst).unwrap();
        let after = out.site(3);
        assert!((after.ready - (before.ready + 5.0)).abs() < 1e-9);
        assert!(after.due - after.ready <= before.due - before.ready + 1e-9);
        assert!(after.ready <= after.due);
    }

    #[test]
    fn demand_change_clamps_to_instance_bounds() {
        let inst = base();
        let up = Mutation::DemandChange {
            customer: 1,
            delta: 1e6,
        };
        assert_eq!(up.apply(&inst).unwrap().site(1).demand, inst.capacity());
        let down = Mutation::DemandChange {
            customer: 1,
            delta: -1e6,
        };
        assert_eq!(down.apply(&inst).unwrap().site(1).demand, 1.0);
    }

    #[test]
    fn dropout_respects_the_demand_floor() {
        let inst = base();
        let m = Mutation::VehicleDropout { count: 1 };
        let out = m.apply(&inst).unwrap();
        assert_eq!(out.max_vehicles(), inst.max_vehicles() - 1);
        assert!(out.validate().is_empty());
        // Dropping the whole fleet is refused once the floor is reached.
        let mut cur = inst;
        let mut dropped = 0;
        while let Ok(next) = m.apply(&cur) {
            cur = next;
            dropped += 1;
            assert!(dropped < 1000, "dropout never bottomed out");
        }
        assert!(cur.total_demand() <= cur.capacity() * cur.max_vehicles() as f64);
        assert!(matches!(m.apply(&cur), Err(MutationError::NoVehiclesLeft)));
    }

    #[test]
    fn unknown_customers_are_rejected() {
        let inst = base();
        let m = Mutation::DemandChange {
            customer: 999,
            delta: 1.0,
        };
        assert!(matches!(
            m.apply(&inst),
            Err(MutationError::UnknownCustomer(999))
        ));
        let m = Mutation::TimeWindowShift {
            customer: 0,
            delta: 1.0,
        };
        assert!(matches!(
            m.apply(&inst),
            Err(MutationError::UnknownCustomer(0))
        ));
    }
}
