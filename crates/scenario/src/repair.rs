//! Elite repair against a mutated instance.
//!
//! A solution from the previous epoch is almost-valid for the next one:
//! customer ids are stable (mutations only ever append customers), so
//! repairing means (1) shedding routes past a shrunken fleet,
//! (2) shedding load past capacity after demand growth, and
//! (3) inserting every uncovered customer — newly arrived or shed — at
//! its cheapest position via [`tsmo_core::insert_cheapest`], the same
//! primitive the adaptive-memory search uses. The result is a complete,
//! capacity-feasible member of the new search space (time windows remain
//! soft, as everywhere in the suite).

use tsmo_core::insert_cheapest;
use vrptw::{evaluate_route, Instance, SiteId, Solution};

/// Repairs `solution` into a valid solution of `inst`.
///
/// Returns `None` when no capacity-feasible completion was found (the
/// caller then falls back to cold construction for this elite) — in
/// practice only possible on adversarial fleet/demand combinations.
pub fn repair(solution: &Solution, inst: &Instance) -> Option<Solution> {
    let mut seen = vec![false; inst.n_sites()];
    let mut pool: Vec<SiteId> = Vec::new();
    let mut routes: Vec<Vec<SiteId>> = Vec::new();
    for route in solution.routes() {
        let kept: Vec<SiteId> = route
            .iter()
            .copied()
            .filter(|&c| {
                let valid = c != 0 && (c as usize) < inst.n_sites() && !seen[c as usize];
                if valid {
                    seen[c as usize] = true;
                }
                valid
            })
            .collect();
        if !kept.is_empty() {
            routes.push(kept);
        }
    }

    // Fleet shrank: disband the smallest routes.
    while routes.len() > inst.max_vehicles() {
        let smallest = routes
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.len())
            .map(|(i, _)| i)
            .expect("routes is non-empty");
        pool.extend(routes.swap_remove(smallest));
    }

    // Demand grew: shed the heaviest customers until feasible.
    for route in &mut routes {
        while evaluate_route(inst, route).load > inst.capacity() && route.len() > 1 {
            let heavy = route
                .iter()
                .enumerate()
                .max_by(|(_, &a), (_, &b)| {
                    let (da, db) = (inst.site(a).demand, inst.site(b).demand);
                    da.partial_cmp(&db).expect("demands are not NaN")
                })
                .map(|(i, _)| i)
                .expect("route is non-empty");
            pool.push(route.remove(heavy));
        }
    }
    routes.retain(|r| !r.is_empty());

    // Cover everything else: shed customers and new arrivals.
    for c in inst.customers() {
        if !seen[c as usize] {
            pool.push(c);
        }
    }
    pool.sort_unstable();
    pool.dedup();
    for c in pool {
        insert_cheapest(inst, &mut routes, c);
    }

    // `insert_cheapest` falls back to overloading the least-loaded route
    // when the fleet is exhausted; relocate such overloads, or give up.
    for _ in 0..inst.n_customers() {
        let overloaded = routes
            .iter()
            .position(|r| evaluate_route(inst, r).load > inst.capacity());
        let Some(ri) = overloaded else {
            let out = Solution::from_routes(routes);
            debug_assert!(out.check(inst).is_empty(), "{:?}", out.check(inst));
            return Some(out);
        };
        let heavy = routes[ri]
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| {
                let (da, db) = (inst.site(a).demand, inst.site(b).demand);
                da.partial_cmp(&db).expect("demands are not NaN")
            })
            .map(|(i, _)| i)
            .expect("overloaded route is non-empty");
        let c = routes[ri].remove(heavy);
        let demand = inst.site(c).demand;
        let target = routes.iter().position(|r| {
            !r.is_empty() && evaluate_route(inst, r).load + demand <= inst.capacity()
        });
        match target {
            Some(ti) => routes[ti].push(c),
            None if routes.len() < inst.max_vehicles() => routes.push(vec![c]),
            None => return None,
        }
        routes.retain(|r| !r.is_empty());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutation::Mutation;
    use crate::script::ScenarioScript;
    use detrand::Xoshiro256StarStar;
    use vrptw::generator::{GeneratorConfig, InstanceClass};
    use vrptw::Customer;
    use vrptw_construct::randomized_i1;

    fn capacity_feasible(s: &Solution, inst: &Instance) -> bool {
        s.routes()
            .iter()
            .all(|r| evaluate_route(inst, r).load <= inst.capacity() + 1e-9)
    }

    #[test]
    fn repairs_across_every_scripted_epoch() {
        let base = GeneratorConfig::new(InstanceClass::RC1, 50, 3).build();
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let script = ScenarioScript::generate(&base, 21, 5, 6);
        let seq = script.instances(&base);
        let mut elite = randomized_i1(&seq[0], &mut rng);
        for inst in &seq[1..] {
            elite = repair(&elite, inst).expect("repair must succeed on scripted epochs");
            assert!(elite.check(inst).is_empty());
            assert!(capacity_feasible(&elite, inst));
        }
    }

    #[test]
    fn covers_new_arrivals() {
        let base = GeneratorConfig::new(InstanceClass::R2, 30, 7).build();
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let elite = randomized_i1(&base, &mut rng);
        let mutated = Mutation::CustomerArrival {
            customer: Customer {
                x: 55.0,
                y: 45.0,
                demand: 9.0,
                ready: 0.0,
                due: base.horizon(),
                service: 10.0,
            },
        }
        .apply(&base)
        .unwrap();
        let repaired = repair(&elite, &mutated).unwrap();
        assert!(repaired.check(&mutated).is_empty());
        let new_id = mutated.n_customers() as SiteId;
        assert!(repaired.routes().iter().any(|r| r.contains(&new_id)));
    }

    #[test]
    fn sheds_routes_after_fleet_shrink() {
        let base = GeneratorConfig::new(InstanceClass::R1, 40, 11).build();
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let elite = randomized_i1(&base, &mut rng);
        let mut inst = base.clone();
        // Drop vehicles until just above the demand floor.
        while let Ok(next) = (Mutation::VehicleDropout { count: 1 }).apply(&inst) {
            inst = next;
        }
        let repaired = repair(&elite, &inst).expect("demand floor keeps repair possible");
        assert!(repaired.n_deployed() <= inst.max_vehicles());
        assert!(repaired.check(&inst).is_empty());
        assert!(capacity_feasible(&repaired, &inst));
    }
}
