//! Seeded scripts of timed mutation batches.
//!
//! A [`ScenarioScript`] turns one base instance into a deterministic
//! sequence of re-optimization epochs: epoch 0 solves the base instance,
//! and each following epoch first applies one [`MutationBatch`] and then
//! re-solves. Scripts are generated from a seed *against the evolving
//! instance* (a drawn mutation that does not apply — e.g. a dropout below
//! the demand floor — is redrawn), so `(base, seed, epochs, per_epoch)`
//! fully determines the whole workload. The server exploits this: a
//! dynamic job ships only the scalar parameters and regenerates the
//! script on the other side.

use crate::mutation::Mutation;
use detrand::{Rng, Xoshiro256StarStar};
use vrptw::{Customer, Instance, SiteId};

/// The mutations applied before one re-optimization epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct MutationBatch {
    /// The epoch this batch precedes (1-based; epoch 0 is the base).
    pub epoch: usize,
    /// Mutations applied in order.
    pub mutations: Vec<Mutation>,
}

/// A deterministic dynamic workload: mutation batches between epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioScript {
    /// Seed the script was generated from.
    pub seed: u64,
    /// One batch per re-optimization epoch after the first.
    pub batches: Vec<MutationBatch>,
}

impl ScenarioScript {
    /// Generates a script of `epochs` total epochs (so `epochs - 1`
    /// mutation batches) with `per_epoch` mutations each, drawn against
    /// the evolving instance starting from `base`.
    ///
    /// # Panics
    /// Panics if `epochs == 0`.
    pub fn generate(base: &Instance, seed: u64, epochs: usize, per_epoch: usize) -> Self {
        assert!(epochs > 0, "a scenario needs at least one epoch");
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed ^ 0x5CE9A210);
        let mut current = base.clone();
        let mut batches = Vec::with_capacity(epochs - 1);
        for epoch in 1..epochs {
            let mut mutations = Vec::with_capacity(per_epoch);
            for _ in 0..per_epoch {
                // Redraw until a mutation applies (bounded; a draw can
                // only fail on dropouts at the demand floor).
                for _attempt in 0..64 {
                    let m = draw(&mut rng, &current);
                    if let Ok(next) = m.apply(&current) {
                        current = next;
                        mutations.push(m);
                        break;
                    }
                }
            }
            batches.push(MutationBatch { epoch, mutations });
        }
        Self { seed, batches }
    }

    /// Total number of re-optimization epochs (batches + the base epoch).
    pub fn epochs(&self) -> usize {
        self.batches.len() + 1
    }

    /// Materializes the per-epoch instances: index 0 is `base`, index `k`
    /// is `base` with the first `k` batches applied.
    ///
    /// # Panics
    /// Panics if a batch does not apply to the instance it was generated
    /// against — impossible for scripts from [`ScenarioScript::generate`]
    /// replayed on the same base instance.
    pub fn instances(&self, base: &Instance) -> Vec<Instance> {
        let mut out = Vec::with_capacity(self.epochs());
        out.push(base.clone());
        for batch in &self.batches {
            let mut cur = out.last().unwrap().clone();
            for m in &batch.mutations {
                cur = m.apply(&cur).expect("script batch must apply to its base");
            }
            out.push(cur);
        }
        out
    }
}

/// Draws one mutation against `inst`: 30% arrivals, 30% window shifts,
/// 25% demand changes, 15% vehicle dropouts.
fn draw(rng: &mut Xoshiro256StarStar, inst: &Instance) -> Mutation {
    let kind = rng
        .choose_weighted(&[0.30, 0.30, 0.25, 0.15])
        .expect("weights are positive");
    match kind {
        0 => Mutation::CustomerArrival {
            customer: draw_customer(rng, inst),
        },
        1 => {
            let sign = if rng.bernoulli(0.5) { 1.0 } else { -1.0 };
            Mutation::TimeWindowShift {
                customer: draw_site(rng, inst),
                delta: sign * inst.horizon() * rng.range_f64(0.02, 0.10),
            }
        }
        2 => {
            let sign = if rng.bernoulli(0.5) { 1.0 } else { -1.0 };
            Mutation::DemandChange {
                customer: draw_site(rng, inst),
                delta: sign * rng.range_u64(1, 21) as f64,
            }
        }
        _ => Mutation::VehicleDropout { count: 1 },
    }
}

fn draw_site(rng: &mut Xoshiro256StarStar, inst: &Instance) -> SiteId {
    rng.range_u64(1, inst.n_sites() as u64) as SiteId
}

/// A new customer inside the bounding box of the existing sites, with a
/// Solomon-range demand and a mid-horizon window.
fn draw_customer(rng: &mut Xoshiro256StarStar, inst: &Instance) -> Customer {
    let (mut lo_x, mut hi_x, mut lo_y, mut hi_y) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for i in 0..inst.n_sites() {
        let c = inst.site(i as SiteId);
        lo_x = lo_x.min(c.x);
        hi_x = hi_x.max(c.x);
        lo_y = lo_y.min(c.y);
        hi_y = hi_y.max(c.y);
    }
    let horizon = inst.horizon();
    let ready = rng.range_f64(0.0, horizon * 0.7);
    let width = horizon * rng.range_f64(0.05, 0.25);
    let service = inst.site(draw_site(rng, inst)).service;
    Customer {
        x: rng.range_f64(lo_x, hi_x.max(lo_x + 1.0)),
        y: rng.range_f64(lo_y, hi_y.max(lo_y + 1.0)),
        demand: rng.range_u64(1, 51) as f64,
        ready,
        due: (ready + width).min(horizon),
        service,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrptw::generator::{GeneratorConfig, InstanceClass};

    fn base() -> Instance {
        GeneratorConfig::new(InstanceClass::R2, 40, 9).build()
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let inst = base();
        let a = ScenarioScript::generate(&inst, 11, 4, 6);
        let b = ScenarioScript::generate(&inst, 11, 4, 6);
        assert_eq!(a, b);
        let c = ScenarioScript::generate(&inst, 12, 4, 6);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn scripts_replay_into_valid_instances() {
        let inst = base();
        let script = ScenarioScript::generate(&inst, 5, 4, 8);
        assert_eq!(script.epochs(), 4);
        let seq = script.instances(&inst);
        assert_eq!(seq.len(), 4);
        for (e, i) in seq.iter().enumerate() {
            assert!(i.validate().is_empty(), "epoch {e}");
            // Customers only ever get added — ids are stable.
            assert!(i.n_customers() >= inst.n_customers(), "epoch {e}");
        }
        // Replay is deterministic.
        let again = script.instances(&inst);
        for (a, b) in seq.iter().zip(&again) {
            assert_eq!(a.n_sites(), b.n_sites());
            assert_eq!(a.max_vehicles(), b.max_vehicles());
        }
    }

    #[test]
    fn batches_hold_the_requested_mutation_count() {
        let inst = base();
        let script = ScenarioScript::generate(&inst, 3, 3, 5);
        for batch in &script.batches {
            assert_eq!(batch.mutations.len(), 5, "epoch {}", batch.epoch);
        }
    }

    #[test]
    fn single_epoch_scripts_are_empty() {
        let inst = base();
        let script = ScenarioScript::generate(&inst, 1, 1, 5);
        assert!(script.batches.is_empty());
        assert_eq!(script.instances(&inst).len(), 1);
    }
}
