//! Property tests of the scenario layer: byte-identical generator output
//! and mutation/script invariants.

use proptest::prelude::*;
use tsmo_scenario::{Generator, ScenarioScript};
use vrptw::generator::InstanceClass;
use vrptw::solomon;

fn class_from(idx: u8) -> InstanceClass {
    InstanceClass::ALL[idx as usize % InstanceClass::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole pin: generator text output is byte-identical per
    /// `(seed, class, n)` — the property the server's content-hash cache
    /// and the mesh serialization rely on.
    #[test]
    fn generator_text_is_byte_identical_per_key(
        class_idx in 0u8..6, n in 10usize..220, seed in 0u64..1000,
    ) {
        let class = class_from(class_idx);
        let a = Generator::new(seed, class, n).text();
        let b = Generator::new(seed, class, n).text();
        prop_assert_eq!(&a, &b, "same key must emit identical bytes");
        // And the text is self-describing: it parses back to size n.
        let inst = solomon::parse(&a).unwrap();
        prop_assert_eq!(inst.n_customers(), n);
        prop_assert!(inst.validate().is_empty());
    }

    /// Different seeds produce different text (no seed aliasing).
    #[test]
    fn generator_text_varies_with_the_seed(
        class_idx in 0u8..6, n in 10usize..120, seed in 0u64..500,
    ) {
        let class = class_from(class_idx);
        let a = Generator::new(seed, class, n).text();
        let b = Generator::new(seed + 1, class, n).text();
        prop_assert_ne!(a, b);
    }

    /// Scripted epochs always replay into valid instances with stable
    /// customer ids (customers are only ever added).
    #[test]
    fn scripts_replay_validly_for_any_seed(
        class_idx in 0u8..6, n in 10usize..60, seed in 0u64..300,
        epochs in 1usize..5, per_epoch in 1usize..6,
    ) {
        let base = Generator::new(seed, class_from(class_idx), n).instance();
        let script = ScenarioScript::generate(&base, seed ^ 0xD1, epochs, per_epoch);
        prop_assert_eq!(script.epochs(), epochs);
        let seq = script.instances(&base);
        prop_assert_eq!(seq[0].n_customers(), n);
        let mut prev = n;
        for inst in &seq {
            prop_assert!(inst.validate().is_empty());
            prop_assert!(inst.n_customers() >= prev, "customers are only added");
            prev = inst.n_customers();
        }
        // Regenerating with the same key gives the same script.
        let again = ScenarioScript::generate(&base, seed ^ 0xD1, epochs, per_epoch);
        prop_assert_eq!(script, again);
    }
}
