//! Acceptance: a generated 100-customer instance survives the full
//! pipeline — text emission, parse, mesh re-serialization (the server's
//! `run_mesh_job` re-emits instances via `solomon::write`), re-parse —
//! and every parallel variant solves the result with a valid front.

use std::sync::Arc;
use tsmo_core::{ParallelVariant, TsmoConfig};
use tsmo_scenario::Generator;
use vrptw::generator::InstanceClass;
use vrptw::solomon;

#[test]
fn generated_100_customer_instance_round_trips_and_solves_on_all_variants() {
    let text = Generator::new(42, InstanceClass::R1, 100).text();
    let parsed = solomon::parse(&text).expect("generated text parses");
    assert_eq!(parsed.n_customers(), 100);

    // The mesh serialization path: re-serialize the parsed instance and
    // parse again; the text must be stable (write ∘ parse is idempotent).
    let mesh_text = solomon::write(&parsed);
    let again = solomon::parse(&mesh_text).expect("mesh serialization parses");
    assert_eq!(solomon::write(&again), mesh_text, "serialization is stable");
    assert_eq!(again.n_sites(), parsed.n_sites());
    assert_eq!(again.capacity(), parsed.capacity());
    assert_eq!(again.max_vehicles(), parsed.max_vehicles());
    for i in 0..parsed.n_sites() as u16 {
        assert_eq!(again.site(i), parsed.site(i), "site {i}");
    }

    let inst = Arc::new(again);
    let variants = [
        ParallelVariant::Sequential,
        ParallelVariant::Synchronous(2),
        ParallelVariant::Asynchronous(2),
        ParallelVariant::Collaborative(2),
    ];
    for variant in variants {
        let cfg = TsmoConfig {
            max_evaluations: 1_200,
            neighborhood_size: 60,
            seed: 7,
            ..TsmoConfig::default()
        };
        let out = variant.run(&inst, &cfg);
        assert!(
            !out.archive.is_empty(),
            "{variant:?} produced an empty archive"
        );
        assert!(out.evaluations > 0, "{variant:?} spent no evaluations");
        for e in &out.archive {
            assert!(
                e.solution.check(&inst).is_empty(),
                "{variant:?} front solution invalid: {:?}",
                e.solution.check(&inst)
            );
        }
    }
}
