//! Command-line client for the solver daemon.
//!
//! ```text
//! servectl --addr HOST:PORT health
//! servectl --addr HOST:PORT metrics [--json]
//! servectl --addr HOST:PORT top [--interval-ms MS] [--iterations N]
//! servectl --addr HOST:PORT submit FILE [--variant V] [--processors P]
//!          [--evals N] [--neighborhood N] [--seed S]
//!          [--deadline-ms D] [--max-iters I] [--record-events] [--wait SECONDS]
//! servectl --addr HOST:PORT submit-dynamic FILE [submit opts]
//!          [--script-seed S] [--epochs N] [--mutations M] [--cold]
//! servectl --addr HOST:PORT submit-portfolio FILE [submit opts]
//!          [--algos A,B,C] [--rounds R] [--floor F] [--eta E]
//!          [--beta B] [--retire-after K]
//! servectl --addr HOST:PORT status JOB
//! servectl --addr HOST:PORT cancel JOB
//! servectl --addr HOST:PORT result JOB
//! servectl --addr HOST:PORT tail JOB
//! servectl --addr HOST:PORT shutdown
//! ```
//!
//! `submit` prints the assigned job id; with `--wait` it polls until the
//! job is terminal and prints the result front. Exit code 2 signals
//! `QueueFull` backpressure so scripts can retry. `tail` streams a
//! `--record-events` job's span/timeline events live, one JSON line
//! each, until the job is terminal and the stream has drained.
//!
//! `metrics --json` prints the registry as mergeable JSON instead of the
//! prometheus exposition. `top` polls the registry and renders a live
//! summary — throughput, queue depth, per-operator acceptance rates, and
//! (against a mesh-fronting daemon) per-node liveness — every
//! `--interval-ms` until `--iterations` ticks have printed (0 = forever).

use std::process::ExitCode;
use std::time::{Duration, Instant};
use tsmo_obs::metrics::names;
use tsmo_obs::MetricsRegistry;
use tsmo_serve::{Client, DynamicParams, JobResult, JobSpec, PortfolioParams};

fn usage() -> ExitCode {
    eprintln!(
        "usage: servectl --addr HOST:PORT [--connect-timeout-ms MS] \
         (health | metrics [--json] | top [--interval-ms MS] [--iterations N] | \
         submit FILE [opts] | submit-dynamic FILE [opts] | \
         submit-portfolio FILE [opts] | status JOB | cancel JOB | result JOB | tail JOB | \
         shutdown)\n\
         submit opts: --variant sequential|synchronous|asynchronous|collaborative \
         --processors P --evals N --neighborhood N --seed S --deadline-ms D --max-iters I \
         --record-events --wait SECONDS\n\
         submit-dynamic opts: submit opts plus --script-seed S --epochs N --mutations M \
         --cold (cold-start every epoch; default warm-starts from the previous front)\n\
         submit-portfolio opts: submit opts plus --algos A,B,C (tsmo-seq|tsmo-sync|tsmo-async|\
         tsmo-collab|nsga2|spea2|paes) --rounds R --floor F --eta E --beta B --retire-after K"
    );
    ExitCode::FAILURE
}

fn print_result(job: u64, r: &JobResult) {
    println!(
        "job {job}: evaluations={} iterations={} truncated={} cause={}",
        r.evaluations,
        r.iterations,
        r.truncated,
        r.stop_cause.as_deref().unwrap_or("-")
    );
    for round in &r.rounds {
        println!(
            "  round {}: winner={} ({}) allocated={} spent={} retired={} coverage={:.3}",
            round.round,
            round.winner,
            round.winner_algo,
            round.allocated,
            round.spent,
            round.retired,
            round.best_coverage
        );
    }
    for e in &r.epochs {
        println!(
            "  epoch {}: customers={} mutations={} warm_seeds={} evaluations={} \
             front={} best_distance={:.2}",
            e.epoch,
            e.customers,
            e.mutations,
            e.warm_seeds,
            e.evaluations,
            e.front_size,
            e.best_distance
        );
    }
    for p in &r.front {
        println!(
            "  distance={:.2} vehicles={} tardiness={:.2} routes={}",
            p.objectives[0],
            p.objectives[1] as u64,
            p.objectives[2],
            p.routes.len()
        );
    }
}

/// Extracts the value of `label` from a sample name's label block, e.g.
/// `label_value("x{node=\"2\",operator=\"relocate\"}", "operator")` →
/// `Some("relocate")`.
fn label_value<'a>(name: &'a str, label: &str) -> Option<&'a str> {
    let needle = format!("{label}=\"");
    let start = name.find(&needle)? + needle.len();
    let end = name[start..].find('"')?;
    Some(&name[start..start + end])
}

/// Sums every counter of `family` that carries `operator="op"`,
/// collapsing any node labels a federated registry adds.
fn operator_total(registry: &MetricsRegistry, family: &str, op: &str) -> u64 {
    registry
        .counters()
        .filter(|(name, _)| name.starts_with(family) && label_value(name, "operator") == Some(op))
        .map(|(_, v)| v)
        .sum()
}

/// One rendered `top` tick. `prev` is the previous tick's completed-job
/// count and timestamp, for the jobs/s rate.
fn render_top(registry: &MetricsRegistry, prev: Option<(u64, Instant)>) -> (u64, Instant) {
    let completed = registry.counter(names::JOBS_COMPLETED);
    let now = Instant::now();
    let rate = match prev {
        Some((before, at)) => {
            let secs = now.duration_since(at).as_secs_f64();
            if secs > 0.0 {
                format!("{:.2}", (completed.saturating_sub(before)) as f64 / secs)
            } else {
                "-".to_string()
            }
        }
        None => "-".to_string(),
    };
    let depth = registry.gauge(names::QUEUE_DEPTH).unwrap_or(0.0);
    println!(
        "jobs completed={completed} rate={rate}/s queue_depth={depth:.0} evaluations={}",
        registry.counter(names::EVALUATIONS)
    );

    // Operators present anywhere in the registry (labeled samples may
    // also carry a node label in a federated view; collapse over it).
    let mut operators: Vec<String> = registry
        .counters()
        .filter(|(name, _)| name.starts_with(names::OPERATOR_PROPOSED))
        .filter_map(|(name, _)| label_value(name, "operator").map(str::to_string))
        .collect();
    operators.sort();
    operators.dedup();
    for op in &operators {
        let proposed = operator_total(registry, names::OPERATOR_PROPOSED, op);
        let feasible = operator_total(registry, names::OPERATOR_FEASIBLE, op);
        let accepted = operator_total(registry, names::OPERATOR_ACCEPTED, op);
        let improving = operator_total(registry, names::OPERATOR_IMPROVING, op);
        let acceptance = if proposed > 0 {
            format!("{:.1}%", 100.0 * accepted as f64 / proposed as f64)
        } else {
            "-".to_string()
        };
        println!(
            "  op {op:<12} proposed={proposed} feasible={feasible} accepted={accepted} \
             improving={improving} acceptance={acceptance}"
        );
    }

    // Per-node liveness gauges appear when the daemon fronts a mesh.
    for (name, value) in registry.gauges() {
        if name.starts_with("tsmo_node_up{") {
            if let Some(node) = label_value(name, "node") {
                let state = if value >= 1.0 { "up" } else { "DOWN" };
                println!("  node {node}: {state}");
            }
        }
    }
    (completed, now)
}

/// The `top` loop: poll, render, sleep. `iterations == 0` runs until
/// the process is killed or the daemon goes away.
fn top(client: &mut Client, interval: Duration, iterations: u64) -> std::io::Result<()> {
    let mut prev = None;
    let mut tick = 0u64;
    loop {
        let registry = MetricsRegistry::from_json(&client.metrics_json()?)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        println!("--- tick {tick} ---");
        prev = Some(render_top(&registry, prev));
        tick += 1;
        if iterations > 0 && tick >= iterations {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let Some(addr) = get("--addr") else {
        return usage();
    };
    // The command is the first argument that is not a flag or flag value.
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            // Boolean flags take no value; everything else consumes one.
            i += if args[i] == "--record-events" || args[i] == "--cold" || args[i] == "--json" {
                1
            } else {
                2
            };
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    let Some(command) = positional.first().map(String::as_str) else {
        return usage();
    };

    // A bounded connect (2 s default) so a downed daemon fails the command
    // promptly instead of hanging in the OS connect.
    let connect_timeout = Duration::from_millis(
        get("--connect-timeout-ms")
            .map(|v| v.parse().expect("--connect-timeout-ms expects an integer"))
            .unwrap_or(2_000),
    );
    let mut client = match Client::connect_timeout(&addr, connect_timeout) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let job_arg = || -> Option<u64> { positional.get(1).and_then(|s| s.parse().ok()) };

    let outcome: std::io::Result<ExitCode> = (|| match command {
        "health" => {
            let (status, queued, running, workers) = client.health()?;
            println!("status={status} queued={queued} running={running} workers={workers}");
            Ok(ExitCode::SUCCESS)
        }
        "metrics" => {
            if args.iter().any(|a| a == "--json") {
                println!("{}", client.metrics_json()?);
            } else {
                print!("{}", client.metrics()?);
            }
            Ok(ExitCode::SUCCESS)
        }
        "top" => {
            let interval = Duration::from_millis(
                get("--interval-ms")
                    .map(|v| v.parse().expect("--interval-ms expects an integer"))
                    .unwrap_or(1_000),
            );
            let iterations: u64 = get("--iterations")
                .map(|v| v.parse().expect("--iterations expects an integer"))
                .unwrap_or(0);
            top(&mut client, interval, iterations)?;
            Ok(ExitCode::SUCCESS)
        }
        "submit" | "submit-dynamic" | "submit-portfolio" => {
            let Some(file) = positional.get(1) else {
                return Ok(usage());
            };
            let instance_text = std::fs::read_to_string(file)
                .map_err(|e| std::io::Error::new(e.kind(), format!("cannot read {file:?}: {e}")))?;
            let mut spec = JobSpec {
                instance_text,
                ..JobSpec::default()
            };
            if let Some(v) = get("--variant") {
                spec.variant = v;
            }
            if let Some(v) = get("--processors") {
                spec.processors = v.parse().expect("--processors expects an integer");
            }
            if let Some(v) = get("--evals") {
                spec.max_evaluations = v.parse().expect("--evals expects an integer");
            }
            if let Some(v) = get("--neighborhood") {
                spec.neighborhood_size = v.parse().expect("--neighborhood expects an integer");
            }
            if let Some(v) = get("--seed") {
                spec.seed = v.parse().expect("--seed expects an integer");
            }
            if let Some(v) = get("--deadline-ms") {
                spec.deadline_ms = Some(v.parse().expect("--deadline-ms expects an integer"));
            }
            if let Some(v) = get("--max-iters") {
                spec.max_iterations = Some(v.parse().expect("--max-iters expects an integer"));
            }
            if args.iter().any(|a| a == "--record-events") {
                spec.record_events = true;
            }
            let submitted = if command == "submit-portfolio" {
                let mut portfolio = PortfolioParams::default();
                if let Some(v) = get("--algos") {
                    portfolio.algos = v.split(',').map(str::to_string).collect();
                }
                if let Some(v) = get("--rounds") {
                    portfolio.rounds = v.parse().expect("--rounds expects an integer");
                }
                if let Some(v) = get("--floor") {
                    portfolio.floor = v.parse().expect("--floor expects a number");
                }
                if let Some(v) = get("--eta") {
                    portfolio.eta = v.parse().expect("--eta expects a number");
                }
                if let Some(v) = get("--beta") {
                    portfolio.softmax_beta = v.parse().expect("--beta expects a number");
                }
                if let Some(v) = get("--retire-after") {
                    portfolio.retire_after = v.parse().expect("--retire-after expects an integer");
                }
                client.submit_portfolio(spec, portfolio)?
            } else if command == "submit-dynamic" {
                let mut dynamic = DynamicParams::default();
                if let Some(v) = get("--script-seed") {
                    dynamic.script_seed = v.parse().expect("--script-seed expects an integer");
                }
                if let Some(v) = get("--epochs") {
                    dynamic.epochs = v.parse().expect("--epochs expects an integer");
                }
                if let Some(v) = get("--mutations") {
                    dynamic.mutations_per_epoch =
                        v.parse().expect("--mutations expects an integer");
                }
                if args.iter().any(|a| a == "--cold") {
                    dynamic.warm = false;
                }
                client.submit_dynamic(spec, dynamic)?
            } else {
                client.submit(spec)?
            };
            match submitted {
                Ok(job) => {
                    println!("submitted job {job}");
                    if let Some(wait) = get("--wait") {
                        let secs: u64 = wait.parse().expect("--wait expects seconds");
                        let r = client.wait_result(job, Duration::from_secs(secs))?;
                        print_result(job, &r);
                    }
                    Ok(ExitCode::SUCCESS)
                }
                Err(capacity) => {
                    eprintln!("queue full (capacity {capacity}); retry later");
                    Ok(ExitCode::from(2))
                }
            }
        }
        "status" => {
            let Some(job) = job_arg() else {
                return Ok(usage());
            };
            println!("job {job}: {}", client.status(job)?);
            Ok(ExitCode::SUCCESS)
        }
        "cancel" => {
            let Some(job) = job_arg() else {
                return Ok(usage());
            };
            client.cancel(job)?;
            println!("cancel requested for job {job}");
            Ok(ExitCode::SUCCESS)
        }
        "result" => {
            let Some(job) = job_arg() else {
                return Ok(usage());
            };
            let r = client.result(job)?;
            print_result(job, &r);
            Ok(ExitCode::SUCCESS)
        }
        "tail" => {
            let Some(job) = job_arg() else {
                return Ok(usage());
            };
            let events = client.tail(job, |line| println!("{line}"))?;
            eprintln!("job {job}: {events} events streamed");
            Ok(ExitCode::SUCCESS)
        }
        "shutdown" => {
            let completed = client.shutdown()?;
            println!("daemon drained and stopped after {completed} jobs");
            Ok(ExitCode::SUCCESS)
        }
        _ => Ok(usage()),
    })();

    match outcome {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{command} failed: {e}");
            ExitCode::FAILURE
        }
    }
}
