//! The solver daemon.
//!
//! ```text
//! served [--addr HOST:PORT] [--workers N] [--queue N]
//!        [--port-file PATH] [--fault-seed S --fault-rate R]
//! ```
//!
//! Binds the address (port 0 picks an ephemeral port), prints the
//! resolved address on stdout, optionally writes it to `--port-file`
//! (how scripts and CI discover an ephemeral port), then serves until a
//! wire `Shutdown` request drains the queue and stops the daemon.

use std::time::Duration;
use tsmo_serve::{Server, ServerConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: served [--addr HOST:PORT] [--workers N] [--queue N] \
             [--port-file PATH] [--fault-seed S --fault-rate R] [--drain-timeout-s S] \
             [--mesh HOST:PORT,HOST:PORT,...] [--cache-mb MB]"
        );
        return;
    }
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let parse_or = |flag: &str, default: u64| -> u64 {
        get(flag)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("{flag} expects an integer, got {v:?}"))
            })
            .unwrap_or(default)
    };

    let mut config = ServerConfig {
        addr: get("--addr").unwrap_or_else(|| "127.0.0.1:0".to_string()),
        workers: parse_or("--workers", 2) as usize,
        queue_capacity: parse_or("--queue", 16) as usize,
        drain_timeout: Duration::from_secs(parse_or("--drain-timeout-s", 120)),
        faults: None,
        // Collaborative jobs fan out over these noded daemons when given.
        mesh: get("--mesh").map(|peers| {
            peers
                .split(',')
                .map(str::trim)
                .filter(|p| !p.is_empty())
                .map(str::to_string)
                .collect()
        }),
        // LRU-evict the instance/solution-pool cache past this footprint.
        cache_budget: get("--cache-mb").map(|v| {
            let mb: usize = v.parse().expect("--cache-mb expects an integer");
            mb * 1024 * 1024
        }),
    };
    if let Some(seed) = get("--fault-seed") {
        let seed: u64 = seed.parse().expect("--fault-seed expects an integer");
        let rate: f64 = get("--fault-rate")
            .expect("--fault-seed requires --fault-rate")
            .parse()
            .expect("--fault-rate expects a number");
        config.faults = Some((seed, rate));
    }

    let mut server = Server::start(config).expect("bind and start the daemon");
    let addr = server.local_addr();
    println!("tsmo-serve listening on {addr}");
    if let Some(path) = get("--port-file") {
        std::fs::write(&path, addr.to_string())
            .unwrap_or_else(|e| panic!("cannot write port file {path:?}: {e}"));
    }
    server.wait();
    println!("tsmo-serve stopped");
}
