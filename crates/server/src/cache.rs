//! Content-hash-keyed instance cache with solution pools and LRU
//! eviction.
//!
//! Submitting the same instance text twice must not parse it twice or
//! hold two copies of its customer vectors: the cache hands every job the
//! same `Arc<Instance>`. Keys are FNV-1a hashes of the submitted text; on
//! a hit the stored text is compared byte-for-byte before the cached
//! instance is reused, so a hash collision degrades to a miss instead of
//! returning the wrong instance.
//!
//! Beyond parse sharing, every entry carries a **solution pool**: the
//! non-dominated front of the most recent job on that instance. Dynamic
//! re-optimization jobs read the pool to warm-start their first epoch and
//! write each epoch's front back under the mutated instance's canonical
//! text, so a later job on the same (content-identical) instance resumes
//! from where the last one left off instead of constructing from scratch.
//!
//! Memory is bounded by an optional byte budget (`served --cache-mb`):
//! when the approximate footprint (instance text plus pooled routes)
//! exceeds it, least-recently-used entries are evicted — pool included —
//! until the cache fits again. The entry touched by the current operation
//! is never evicted, even when it alone exceeds the budget.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use vrptw::{Instance, Solution};

/// FNV-1a over the raw bytes — deterministic across processes, unlike
/// `DefaultHasher`, so cache keys are stable for logging.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

struct Entry {
    text: String,
    instance: Arc<Instance>,
    /// Most recent result front for this instance (dynamic warm-starts).
    pool: Vec<Solution>,
    /// Logical timestamp of the last touch (monotonic per cache).
    last_used: u64,
    /// Approximate footprint: text bytes plus pooled route bytes.
    bytes: usize,
}

/// Approximate in-memory size of a pooled solution: per-customer route
/// slots plus fixed per-solution overhead. An estimate is enough — the
/// budget bounds growth, it is not an allocator audit.
fn pool_bytes(pool: &[Solution]) -> usize {
    pool.iter()
        .map(|s| 64 + 2 * s.routes().iter().map(Vec::len).sum::<usize>())
        .sum()
}

struct CacheState {
    // Each bucket is a Vec so true hash collisions coexist.
    entries: HashMap<u64, Vec<Entry>>,
    clock: u64,
    total_bytes: usize,
    evictions: u64,
}

impl CacheState {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn find(&mut self, key: u64, text: &str) -> Option<&mut Entry> {
        self.entries
            .get_mut(&key)?
            .iter_mut()
            .find(|e| e.text == text)
    }

    /// Evicts least-recently-used entries until the budget is respected,
    /// never touching the entry stamped `keep` (the one the caller just
    /// inserted or updated).
    fn enforce(&mut self, budget: Option<usize>, keep: u64) {
        let Some(budget) = budget else { return };
        while self.total_bytes > budget {
            let victim = self
                .entries
                .iter()
                .flat_map(|(k, bucket)| bucket.iter().map(move |e| (*k, e.last_used, e.bytes)))
                .filter(|&(_, used, _)| used != keep)
                .min_by_key(|&(_, used, _)| used);
            let Some((key, used, bytes)) = victim else {
                break; // only the protected entry is left
            };
            let bucket = self.entries.get_mut(&key).expect("victim bucket exists");
            bucket.retain(|e| e.last_used != used);
            if bucket.is_empty() {
                self.entries.remove(&key);
            }
            self.total_bytes -= bytes;
            self.evictions += 1;
        }
    }
}

/// Thread-safe parse-once cache of Solomon instance texts with per-entry
/// solution pools and an optional LRU byte budget.
pub struct InstanceCache {
    state: Mutex<CacheState>,
    budget: Option<usize>,
}

impl Default for InstanceCache {
    fn default() -> Self {
        Self::new()
    }
}

impl InstanceCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::with_budget(None)
    }

    /// An empty cache evicting LRU entries past `budget` bytes
    /// (`None` = unbounded).
    pub fn with_budget(budget: Option<usize>) -> Self {
        Self {
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                clock: 0,
                total_bytes: 0,
                evictions: 0,
            }),
            budget,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Returns the shared instance for `text`, parsing it only on first
    /// sight. The flag is `true` on a cache hit.
    pub fn get_or_parse(&self, text: &str) -> Result<(Arc<Instance>, bool), String> {
        let key = fnv1a(text.as_bytes());
        let mut state = self.lock();
        let now = state.tick();
        if let Some(entry) = state.find(key, text) {
            entry.last_used = now;
            return Ok((Arc::clone(&entry.instance), true));
        }
        let instance = Arc::new(
            vrptw::solomon::parse(text).map_err(|e| format!("instance parse error: {e}"))?,
        );
        let bytes = text.len();
        state.entries.entry(key).or_default().push(Entry {
            text: text.to_string(),
            instance: Arc::clone(&instance),
            pool: Vec::new(),
            last_used: now,
            bytes,
        });
        state.total_bytes += bytes;
        state.enforce(self.budget, now);
        Ok((instance, false))
    }

    /// Stores `pool` as the solution pool of the instance with canonical
    /// text `text`, replacing any previous pool. Creates the entry
    /// (parsing the text) when the instance is not cached yet — dynamic
    /// epochs deposit fronts for mutated instances no client has
    /// submitted. A text that does not parse is ignored.
    pub fn pool_put(&self, text: &str, pool: Vec<Solution>) {
        let key = fnv1a(text.as_bytes());
        let mut state = self.lock();
        let now = state.tick();
        if let Some(entry) = state.find(key, text) {
            let new_bytes = entry.text.len() + pool_bytes(&pool);
            let old_bytes = entry.bytes;
            entry.pool = pool;
            entry.bytes = new_bytes;
            entry.last_used = now;
            state.total_bytes = state.total_bytes + new_bytes - old_bytes;
            state.enforce(self.budget, now);
            return;
        }
        let Ok(instance) = vrptw::solomon::parse(text) else {
            return;
        };
        let bytes = text.len() + pool_bytes(&pool);
        state.entries.entry(key).or_default().push(Entry {
            text: text.to_string(),
            instance: Arc::new(instance),
            pool,
            last_used: now,
            bytes,
        });
        state.total_bytes += bytes;
        state.enforce(self.budget, now);
    }

    /// The stored solution pool for `text` (empty when the instance is
    /// not cached or has no pool yet). Reading counts as a touch for LRU
    /// purposes.
    pub fn pool_get(&self, text: &str) -> Vec<Solution> {
        let key = fnv1a(text.as_bytes());
        let mut state = self.lock();
        let now = state.tick();
        match state.find(key, text) {
            Some(entry) => {
                entry.last_used = now;
                entry.pool.clone()
            }
            None => Vec::new(),
        }
    }

    /// Number of distinct instances held.
    pub fn len(&self) -> usize {
        self.lock().entries.values().map(Vec::len).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes held (texts plus pooled routes).
    pub fn total_bytes(&self) -> usize {
        self.lock().total_bytes
    }

    /// Entries evicted by the byte budget over the cache's lifetime.
    pub fn evictions(&self) -> u64 {
        self.lock().evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_instance() -> String {
        "\
TINY

VEHICLE
NUMBER     CAPACITY
  3          50

CUSTOMER
CUST NO.  XCOORD.   YCOORD.    DEMAND   READY TIME   DUE DATE   SERVICE   TIME
    0      35         35          0          0       230          0
    1      41         49         10          0       204         10
    2      22         75         30         87       124         10
    3      45         70         20         15        67         10
"
        .to_string()
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn second_lookup_hits_and_shares_the_same_arc() {
        let cache = InstanceCache::new();
        let text = tiny_instance();
        let (first, hit1) = cache.get_or_parse(&text).unwrap();
        let (second, hit2) = cache.get_or_parse(&text).unwrap();
        assert!(!hit1);
        assert!(hit2);
        assert!(
            Arc::ptr_eq(&first, &second),
            "hit must reuse the same allocation, not reparse"
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_texts_are_distinct_entries() {
        let cache = InstanceCache::new();
        let a = tiny_instance();
        let b = a.replace("TINY", "TINY2");
        let (ia, _) = cache.get_or_parse(&a).unwrap();
        let (ib, hit) = cache.get_or_parse(&b).unwrap();
        assert!(!hit);
        assert!(!Arc::ptr_eq(&ia, &ib));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn garbage_text_is_an_error_and_not_cached() {
        let cache = InstanceCache::new();
        assert!(cache.get_or_parse("not an instance").is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn pools_round_trip_and_replace() {
        let cache = InstanceCache::new();
        let text = tiny_instance();
        assert!(cache.pool_get(&text).is_empty(), "no entry, no pool");
        cache.get_or_parse(&text).unwrap();
        assert!(cache.pool_get(&text).is_empty(), "entry starts poolless");
        let pool = vec![Solution::from_routes(vec![vec![1, 2], vec![3]])];
        cache.pool_put(&text, pool.clone());
        assert_eq!(cache.pool_get(&text), pool);
        let replacement = vec![Solution::from_routes(vec![vec![3, 2, 1]])];
        cache.pool_put(&text, replacement.clone());
        assert_eq!(cache.pool_get(&text), replacement, "pools replace");
    }

    #[test]
    fn pool_put_creates_entries_for_unseen_instances() {
        let cache = InstanceCache::new();
        let text = tiny_instance();
        cache.pool_put(&text, vec![Solution::from_routes(vec![vec![1, 2, 3]])]);
        assert_eq!(cache.len(), 1);
        let (_, hit) = cache.get_or_parse(&text).unwrap();
        assert!(hit, "pool_put parsed and cached the instance");
        // Unparseable canonical text is dropped silently.
        cache.pool_put("garbage", vec![]);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn budget_evicts_lru_then_readmits() {
        let a = tiny_instance();
        let b = a.replace("TINY", "TINY2");
        // Budget fits one entry but not two.
        let cache = InstanceCache::with_budget(Some(a.len() + a.len() / 2));
        cache.get_or_parse(&a).unwrap();
        cache.pool_put(&a, vec![Solution::from_routes(vec![vec![1], vec![2, 3]])]);
        cache.get_or_parse(&b).unwrap();
        assert_eq!(cache.len(), 1, "inserting B evicted LRU entry A");
        assert_eq!(cache.evictions(), 1);
        assert!(
            cache.pool_get(&a).is_empty(),
            "eviction dropped A's pool with it"
        );
        // Readmission works and in turn evicts B.
        let (_, hit) = cache.get_or_parse(&a).unwrap();
        assert!(!hit, "A was evicted, so this is a fresh parse");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 2);
        assert!(cache.total_bytes() <= a.len() + a.len() / 2);
    }

    #[test]
    fn the_touched_entry_survives_an_overflowing_budget() {
        let text = tiny_instance();
        let cache = InstanceCache::with_budget(Some(8)); // smaller than any entry
        cache.get_or_parse(&text).unwrap();
        assert_eq!(cache.len(), 1, "sole entry is never self-evicted");
        let pool = vec![Solution::from_routes(vec![vec![1, 2, 3]])];
        cache.pool_put(&text, pool.clone());
        assert_eq!(cache.pool_get(&text), pool);
    }

    #[test]
    fn unbounded_caches_never_evict() {
        let cache = InstanceCache::new();
        let base = tiny_instance();
        for i in 0..20 {
            cache
                .get_or_parse(&base.replace("TINY", &format!("T{i}")))
                .unwrap();
        }
        assert_eq!(cache.len(), 20);
        assert_eq!(cache.evictions(), 0);
    }
}
