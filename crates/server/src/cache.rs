//! Content-hash-keyed instance cache.
//!
//! Submitting the same instance text twice must not parse it twice or
//! hold two copies of its customer vectors: the cache hands every job the
//! same `Arc<Instance>`. Keys are FNV-1a hashes of the submitted text; on
//! a hit the stored text is compared byte-for-byte before the cached
//! instance is reused, so a hash collision degrades to a miss instead of
//! returning the wrong instance.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use vrptw::Instance;

/// FNV-1a over the raw bytes — deterministic across processes, unlike
/// `DefaultHasher`, so cache keys are stable for logging.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

struct Entry {
    text: String,
    instance: Arc<Instance>,
}

/// Thread-safe parse-once cache of Solomon instance texts.
pub struct InstanceCache {
    // Each bucket is a Vec so true hash collisions coexist.
    entries: Mutex<HashMap<u64, Vec<Entry>>>,
}

impl Default for InstanceCache {
    fn default() -> Self {
        Self::new()
    }
}

impl InstanceCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// Returns the shared instance for `text`, parsing it only on first
    /// sight. The flag is `true` on a cache hit.
    pub fn get_or_parse(&self, text: &str) -> Result<(Arc<Instance>, bool), String> {
        let key = fnv1a(text.as_bytes());
        let mut entries = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(bucket) = entries.get(&key) {
            for entry in bucket {
                if entry.text == text {
                    return Ok((Arc::clone(&entry.instance), true));
                }
            }
        }
        let instance = Arc::new(
            vrptw::solomon::parse(text).map_err(|e| format!("instance parse error: {e}"))?,
        );
        entries.entry(key).or_default().push(Entry {
            text: text.to_string(),
            instance: Arc::clone(&instance),
        });
        Ok((instance, false))
    }

    /// Number of distinct instances held.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_instance() -> String {
        "\
TINY

VEHICLE
NUMBER     CAPACITY
  3          50

CUSTOMER
CUST NO.  XCOORD.   YCOORD.    DEMAND   READY TIME   DUE DATE   SERVICE   TIME
    0      35         35          0          0       230          0
    1      41         49         10          0       204         10
    2      22         75         30         87       124         10
    3      45         70         20         15        67         10
"
        .to_string()
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn second_lookup_hits_and_shares_the_same_arc() {
        let cache = InstanceCache::new();
        let text = tiny_instance();
        let (first, hit1) = cache.get_or_parse(&text).unwrap();
        let (second, hit2) = cache.get_or_parse(&text).unwrap();
        assert!(!hit1);
        assert!(hit2);
        assert!(
            Arc::ptr_eq(&first, &second),
            "hit must reuse the same allocation, not reparse"
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_texts_are_distinct_entries() {
        let cache = InstanceCache::new();
        let a = tiny_instance();
        let b = a.replace("TINY", "TINY2");
        let (ia, _) = cache.get_or_parse(&a).unwrap();
        let (ib, hit) = cache.get_or_parse(&b).unwrap();
        assert!(!hit);
        assert!(!Arc::ptr_eq(&ia, &ib));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn garbage_text_is_an_error_and_not_cached() {
        let cache = InstanceCache::new();
        assert!(cache.get_or_parse("not an instance").is_err());
        assert!(cache.is_empty());
    }
}
