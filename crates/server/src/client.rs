//! Blocking client for the solver service.
//!
//! One [`Client`] wraps one TCP connection; requests are answered in
//! order, so a client is also the unit of pipelining. All methods are
//! thin wrappers over [`Client::request`].

use crate::wire::{self, DynamicParams, JobResult, JobSpec, PortfolioParams, Request, Response};
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A connected wire-protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

fn protocol_err(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Self::from_stream(TcpStream::connect(addr)?)
    }

    /// Connects to a daemon, failing after `timeout` instead of hanging in
    /// the OS connect when the daemon is down or the host is unreachable.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        Self::from_stream(TcpStream::connect_timeout(&resolved, timeout)?)
    }

    fn from_stream(stream: TcpStream) -> io::Result<Client> {
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and reads its response.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        wire::write_frame(&mut self.writer, &req.to_json())?;
        let payload = wire::read_frame(&mut self.reader)?
            .ok_or_else(|| protocol_err("server closed the connection".to_string()))?;
        Response::parse(&payload).map_err(protocol_err)
    }

    /// Submits a job. `Ok(Ok(id))` on admission, `Ok(Err(capacity))` on
    /// `QueueFull` backpressure.
    pub fn submit(&mut self, spec: JobSpec) -> io::Result<Result<u64, u32>> {
        match self.request(&Request::Submit(spec))? {
            Response::Submitted { job, .. } => Ok(Ok(job)),
            Response::QueueFull { capacity } => Ok(Err(capacity)),
            Response::Error { message } => Err(protocol_err(message)),
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }

    /// Submits a dynamic re-optimization job: the daemon mutates the
    /// instance per the deterministic scenario script and re-solves every
    /// epoch, warm-starting from the previous front unless
    /// `dynamic.warm` is off. Same admission contract as
    /// [`submit`](Client::submit).
    pub fn submit_dynamic(
        &mut self,
        spec: JobSpec,
        dynamic: DynamicParams,
    ) -> io::Result<Result<u64, u32>> {
        match self.request(&Request::SubmitDynamic { spec, dynamic })? {
            Response::Submitted { job, .. } => Ok(Ok(job)),
            Response::QueueFull { capacity } => Ok(Err(capacity)),
            Response::Error { message } => Err(protocol_err(message)),
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }

    /// Submits a portfolio race: the named algorithms share `spec`'s
    /// evaluation budget across `portfolio.rounds` scored rounds with
    /// coverage-driven reallocation. Same admission contract as
    /// [`submit`](Client::submit).
    pub fn submit_portfolio(
        &mut self,
        spec: JobSpec,
        portfolio: PortfolioParams,
    ) -> io::Result<Result<u64, u32>> {
        match self.request(&Request::SubmitPortfolio { spec, portfolio })? {
            Response::Submitted { job, .. } => Ok(Ok(job)),
            Response::QueueFull { capacity } => Ok(Err(capacity)),
            Response::Error { message } => Err(protocol_err(message)),
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }

    /// A job's lifecycle state name.
    pub fn status(&mut self, job: u64) -> io::Result<String> {
        match self.request(&Request::Status { job })? {
            Response::JobStatus { state, .. } => Ok(state),
            Response::NotFound { job } => Err(protocol_err(format!("job {job} not found"))),
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }

    /// Requests cooperative cancellation.
    pub fn cancel(&mut self, job: u64) -> io::Result<()> {
        match self.request(&Request::Cancel { job })? {
            Response::CancelAccepted { .. } => Ok(()),
            Response::NotFound { job } => Err(protocol_err(format!("job {job} not found"))),
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }

    /// Fetches a terminal job's result.
    pub fn result(&mut self, job: u64) -> io::Result<JobResult> {
        match self.request(&Request::Result { job })? {
            Response::JobResult { result, .. } => Ok(result),
            Response::NotFound { job } => Err(protocol_err(format!("job {job} not found"))),
            Response::Error { message } => Err(protocol_err(message)),
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }

    /// Polls `status` until the job is terminal, then fetches the result.
    /// Fails with `TimedOut` if `timeout` elapses first.
    pub fn wait_result(&mut self, job: u64, timeout: Duration) -> io::Result<JobResult> {
        let deadline = Instant::now() + timeout;
        loop {
            let state = self.status(job)?;
            match state.as_str() {
                "done" => return self.result(job),
                "failed" => return Err(protocol_err(format!("job {job} failed"))),
                _ => {}
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("job {job} still '{state}' after {timeout:?}"),
                ));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Tails a job's event stream (submitted with `record_events`),
    /// calling `on_event` with each JSONL event line as it arrives.
    /// Returns the total number of streamed events once the job is
    /// terminal and the stream drained.
    pub fn tail(&mut self, job: u64, mut on_event: impl FnMut(&str)) -> io::Result<u64> {
        wire::write_frame(&mut self.writer, &Request::Tail { job }.to_json())?;
        loop {
            let payload = wire::read_frame(&mut self.reader)?
                .ok_or_else(|| protocol_err("server closed the tail stream".to_string()))?;
            match Response::parse(&payload).map_err(protocol_err)? {
                Response::TailEvent { line, .. } => on_event(&line),
                Response::TailDone { events, .. } => return Ok(events),
                Response::NotFound { job } => {
                    return Err(protocol_err(format!("job {job} not found")))
                }
                Response::Error { message } => return Err(protocol_err(message)),
                other => return Err(protocol_err(format!("unexpected response {other:?}"))),
            }
        }
    }

    /// The daemon's health snapshot: `(status, queued, running, workers)`.
    pub fn health(&mut self) -> io::Result<(String, u32, u32, u32)> {
        match self.request(&Request::Health)? {
            Response::Health {
                status,
                queued,
                running,
                workers,
            } => Ok((status, queued, running, workers)),
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }

    /// The daemon's Prometheus exposition.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { prometheus } => Ok(prometheus),
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }

    /// The daemon's metrics as a mergeable JSON registry string. Parse
    /// with [`tsmo_obs::MetricsRegistry::from_json`] to fold the snapshot
    /// into another registry or diff two snapshots.
    pub fn metrics_json(&mut self) -> io::Result<String> {
        match self.request(&Request::MetricsJson)? {
            Response::MetricsJson { registry } => Ok(registry),
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }

    /// Drain-then-stop shutdown; returns the daemon's lifetime completed
    /// job count once the drain has finished.
    pub fn shutdown(&mut self) -> io::Result<u64> {
        match self.request(&Request::Shutdown)? {
            Response::ShutdownComplete { jobs_completed } => Ok(jobs_completed),
            other => Err(protocol_err(format!("unexpected response {other:?}"))),
        }
    }
}
