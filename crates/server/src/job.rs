//! Job lifecycle tracking.
//!
//! Every submitted job lives in the [`JobTable`] from admission to
//! retrieval. States move strictly forward (`Queued → Running → Done`
//! or `Failed`); waiters block on a condvar, which is also how the
//! daemon's shutdown path waits for the in-flight jobs to drain.

use crate::wire::{DynamicParams, JobResult, JobSpec, PortfolioParams};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use tsmo_core::CancelToken;
use tsmo_obs::MemoryRecorder;
use vrptw::Instance;

/// Lifecycle state of one job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// On a worker.
    Running,
    /// Finished with a result (possibly truncated).
    Done(JobResult),
    /// Could not run (the message explains why).
    Failed(String),
}

impl JobState {
    /// Short wire name of the state.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }

    /// Whether the state is final.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done(_) | JobState::Failed(_))
    }
}

/// One tracked job: the spec, its shared parsed instance, the cancel
/// token threaded into the search, and the submission timestamp for
/// latency accounting.
pub struct Job {
    /// The submitted spec (instance text dropped — the parsed instance
    /// is shared via `instance`).
    pub spec: JobSpec,
    /// Parsed instance, shared with the cache (no per-job clone).
    pub instance: Arc<Instance>,
    /// Cooperative stop signal for this job's run.
    pub cancel: CancelToken,
    /// When the job was admitted.
    pub submitted: Instant,
    /// Current state.
    pub state: JobState,
    /// Per-job event recorder (spans included), present when the spec
    /// asked for `record_events`. `Tail` streams from it while the job
    /// runs; metrics still flow to the daemon's shared registry.
    pub events: Option<Arc<MemoryRecorder>>,
    /// Dynamic re-optimization parameters, present when the job was
    /// submitted via `SubmitDynamic`; `None` runs a plain single search.
    pub dynamic: Option<DynamicParams>,
    /// Portfolio race parameters, present when the job was submitted via
    /// `SubmitPortfolio`. Mutually exclusive with `dynamic`.
    pub portfolio: Option<PortfolioParams>,
}

struct TableState {
    jobs: HashMap<u64, Job>,
    next_id: u64,
}

/// Thread-safe registry of all jobs the daemon has seen.
pub struct JobTable {
    state: Mutex<TableState>,
    changed: Condvar,
}

impl Default for JobTable {
    fn default() -> Self {
        Self::new()
    }
}

impl JobTable {
    /// An empty table; ids start at 1.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(TableState {
                jobs: HashMap::new(),
                next_id: 1,
            }),
            changed: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TableState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Registers a new queued job and returns its id. The instance text
    /// inside `spec` is dropped here: the parsed `instance` is the single
    /// shared copy. `dynamic` marks the job as a dynamic re-optimization
    /// run, `portfolio` as a budget race; at most one may be set.
    pub fn admit(
        &self,
        mut spec: JobSpec,
        dynamic: Option<DynamicParams>,
        portfolio: Option<PortfolioParams>,
        instance: Arc<Instance>,
        cancel: CancelToken,
    ) -> u64 {
        spec.instance_text = String::new();
        let events = spec
            .record_events
            .then(|| Arc::new(MemoryRecorder::new().with_span_events()));
        let mut state = self.lock();
        let id = state.next_id;
        state.next_id += 1;
        state.jobs.insert(
            id,
            Job {
                spec,
                instance,
                cancel,
                submitted: Instant::now(),
                state: JobState::Queued,
                events,
                dynamic,
                portfolio,
            },
        );
        id
    }

    /// The job's event recorder handle, if it records events.
    pub fn events_recorder(&self, id: u64) -> Option<Arc<MemoryRecorder>> {
        self.with_job(id, |j| j.events.clone()).flatten()
    }

    /// The next id `admit` would hand out (used to report the id a
    /// rejected submission *would* have received).
    pub fn peek_next_id(&self) -> u64 {
        self.lock().next_id
    }

    /// Forgets a job entirely (used when the queue rejects an admission:
    /// a rejected job must not count toward the shutdown drain).
    pub fn remove(&self, id: u64) -> bool {
        let removed = self.lock().jobs.remove(&id).is_some();
        self.changed.notify_all();
        removed
    }

    /// Runs `f` on the job, if it exists.
    pub fn with_job<T>(&self, id: u64, f: impl FnOnce(&mut Job) -> T) -> Option<T> {
        let mut state = self.lock();
        let out = state.jobs.get_mut(&id).map(f);
        drop(state);
        self.changed.notify_all();
        out
    }

    /// The job's current state name, if it exists.
    pub fn state_name(&self, id: u64) -> Option<&'static str> {
        self.with_job(id, |j| j.state.name())
    }

    /// The job's result, if it is `Done`.
    pub fn result(&self, id: u64) -> Option<Option<JobResult>> {
        self.with_job(id, |j| match &j.state {
            JobState::Done(r) => Some(r.clone()),
            _ => None,
        })
    }

    /// Count of jobs currently in `Running`.
    pub fn running_count(&self) -> u32 {
        self.lock()
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .count() as u32
    }

    /// Count of jobs in a terminal state.
    pub fn terminal_count(&self) -> u64 {
        self.lock()
            .jobs
            .values()
            .filter(|j| j.state.is_terminal())
            .count() as u64
    }

    /// Blocks until the job reaches a terminal state or the timeout
    /// elapses. Returns the terminal state, or `None` on timeout /
    /// unknown id.
    pub fn wait_terminal(&self, id: u64, timeout: Duration) -> Option<JobState> {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            match state.jobs.get(&id) {
                None => return None,
                Some(j) if j.state.is_terminal() => return Some(j.state.clone()),
                Some(_) => {}
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let (guard, res) = self
                .changed
                .wait_timeout(state, left)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = guard;
            if res.timed_out() {
                match state.jobs.get(&id) {
                    Some(j) if j.state.is_terminal() => return Some(j.state.clone()),
                    _ => return None,
                }
            }
        }
    }

    /// Blocks until every tracked job is terminal (the shutdown drain).
    /// Returns `false` if the timeout elapsed first.
    pub fn wait_all_terminal(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            if state.jobs.values().all(|j| j.state.is_terminal()) {
                return true;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            state = self
                .changed
                .wait_timeout(state, left)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vrptw::generator::{GeneratorConfig, InstanceClass};

    fn table_with_job() -> (JobTable, u64) {
        let table = JobTable::new();
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R1, 10, 1).build());
        let id = table.admit(JobSpec::default(), None, None, inst, CancelToken::never());
        (table, id)
    }

    fn done_result() -> JobResult {
        JobResult {
            evaluations: 1,
            iterations: 1,
            truncated: false,
            stop_cause: None,
            front: Vec::new(),
            epochs: Vec::new(),
            rounds: Vec::new(),
        }
    }

    #[test]
    fn ids_are_sequential_and_states_advance() {
        let (table, id) = table_with_job();
        assert_eq!(id, 1);
        assert_eq!(table.peek_next_id(), 2);
        assert_eq!(table.state_name(id), Some("queued"));
        table.with_job(id, |j| j.state = JobState::Running);
        assert_eq!(table.running_count(), 1);
        table.with_job(id, |j| j.state = JobState::Done(done_result()));
        assert_eq!(table.state_name(id), Some("done"));
        assert_eq!(table.terminal_count(), 1);
        assert!(table.result(id).unwrap().is_some());
    }

    #[test]
    fn admit_drops_the_instance_text_copy() {
        let table = JobTable::new();
        let inst = Arc::new(GeneratorConfig::new(InstanceClass::R1, 10, 1).build());
        let spec = JobSpec {
            instance_text: "X".repeat(1000),
            ..JobSpec::default()
        };
        let id = table.admit(spec, None, None, inst, CancelToken::never());
        let text_len = table.with_job(id, |j| j.spec.instance_text.len()).unwrap();
        assert_eq!(text_len, 0, "the parsed Arc<Instance> is the only copy");
    }

    #[test]
    fn wait_terminal_sees_cross_thread_completion() {
        let (table, id) = table_with_job();
        let table = Arc::new(table);
        let t2 = Arc::clone(&table);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            t2.with_job(id, |j| j.state = JobState::Failed("boom".to_string()));
        });
        let state = table.wait_terminal(id, Duration::from_secs(5));
        h.join().unwrap();
        assert_eq!(state, Some(JobState::Failed("boom".to_string())));
        assert!(table.wait_all_terminal(Duration::from_secs(1)));
    }

    #[test]
    fn wait_terminal_times_out_on_stuck_jobs() {
        let (table, id) = table_with_job();
        assert_eq!(table.wait_terminal(id, Duration::from_millis(30)), None);
        assert!(!table.wait_all_terminal(Duration::from_millis(30)));
        assert_eq!(table.wait_terminal(999, Duration::from_millis(1)), None);
    }
}
