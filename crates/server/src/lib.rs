//! `tsmo-serve` — a solver service for the TSMO suite.
//!
//! The repository's algorithms run one search per process invocation;
//! this crate wraps them in a long-lived daemon so many clients can
//! share one solver host:
//!
//! * [`wire`] — length-prefixed JSON frames; requests
//!   Submit / Status / Cancel / Result / Health / Metrics / Shutdown.
//! * [`queue`] — a bounded job queue with explicit `QueueFull`
//!   backpressure (the daemon never buffers unboundedly).
//! * [`cache`] — a content-hash-keyed instance cache, so resubmitting
//!   the same instance shares one `Arc<Instance>` instead of reparsing.
//! * [`job`] — the job table: lifecycle states, cancel tokens, waiters.
//! * [`server`] — the daemon itself: accept loop, worker pool, per-job
//!   deadlines and cooperative cancellation
//!   ([`tsmo_core::CancelToken`]), HTTP `/healthz` + `/metrics` on the
//!   same port, and drain-then-stop shutdown.
//! * [`client`] — a blocking client library (used by `servectl` and the
//!   `loadgen` benchmark).
//!
//! Everything is std-only: the wire format reuses the zero-dependency
//! JSON support from `tsmo-obs`, and metrics come from the existing
//! recorder machinery. Cancelled or deadline-expired jobs return their
//! best-so-far front as a valid truncated run — byte-identical to a
//! prefix of the uncancelled run, because the token is checked before
//! any randomness is drawn each iteration.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod job;
pub mod queue;
pub mod server;
pub mod wire;

pub use cache::InstanceCache;
pub use client::Client;
pub use job::{JobState, JobTable};
pub use queue::{JobQueue, QueueFull};
pub use server::{Server, ServerConfig};
pub use wire::{
    DynamicParams, EpochInfo, FrontPoint, JobResult, JobSpec, PortfolioParams, Request, Response,
    RoundInfo,
};
