//! A bounded MPMC job queue with explicit backpressure.
//!
//! The service never buffers unboundedly: a push against a full queue
//! fails immediately with [`QueueFull`], which the connection handler
//! turns into the wire-level `QueueFull` response. Consumers block on a
//! condvar; closing the queue wakes them all and lets them drain the
//! remaining items before exiting — the first half of the daemon's
//! drain-then-stop shutdown.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Push rejection: the queue held `capacity` items already.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// The configured capacity.
    pub capacity: usize,
}

struct QueueState {
    items: VecDeque<u64>,
    closed: bool,
}

/// Bounded FIFO of job ids.
pub struct JobQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    available: Condvar,
}

impl JobQueue {
    /// An open queue holding at most `capacity` jobs.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity queue rejects everything");
        Self {
            capacity,
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Enqueues a job id. Returns the queue depth *after* the push, or
    /// [`QueueFull`] without blocking when at capacity (or closed).
    pub fn push(&self, job: u64) -> Result<usize, QueueFull> {
        let mut state = self.lock();
        if state.closed || state.items.len() >= self.capacity {
            return Err(QueueFull {
                capacity: self.capacity,
            });
        }
        state.items.push_back(job);
        let depth = state.items.len();
        drop(state);
        self.available.notify_one();
        Ok(depth)
    }

    /// Blocks until a job is available and dequeues it. Returns `None`
    /// once the queue is closed *and* empty — the consumer's signal to
    /// exit after the drain.
    pub fn pop(&self) -> Option<u64> {
        let mut state = self.lock();
        loop {
            if let Some(job) = state.items.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: pushes start failing, consumers drain what is
    /// left and then see `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_reports_depth_and_rejects_at_capacity() {
        let q = JobQueue::new(2);
        assert_eq!(q.push(1), Ok(1));
        assert_eq!(q.push(2), Ok(2));
        assert_eq!(q.push(3), Err(QueueFull { capacity: 2 }));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(3), Ok(2), "space frees after a pop");
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = JobQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(QueueFull { capacity: 4 }));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = Arc::new(JobQueue::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        q.push(9).unwrap();
        q.close();
        let mut got: Vec<Option<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![None, None, Some(9)]);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_is_rejected() {
        JobQueue::new(0);
    }
}
