//! The daemon: accept loop, worker pool, dispatch, and shutdown.
//!
//! Architecture: one accept thread spawns a handler thread per
//! connection; handlers only touch the job table and the bounded queue,
//! so a slow client never blocks the solvers. A fixed pool of worker
//! threads pops job ids off the queue and runs them through
//! [`ParallelVariant::run_with_cancel`], which threads each job's
//! [`CancelToken`] into the search loop — deadlines and cancel requests
//! truncate a run at an iteration boundary and its best-so-far front
//! comes back as a valid result.
//!
//! Two recorders split the telemetry: a **metrics-only** recorder is
//! attached to every search run (bounded memory regardless of uptime),
//! and a small event recorder keeps the job-lifecycle audit trail
//! (admitted / rejected / completed — a handful of events per job).
//! Both serve the same Prometheus exposition.
//!
//! The listening port also answers plain HTTP `GET /healthz` and
//! `GET /metrics` — the first bytes of a connection distinguish an HTTP
//! request from a length-prefixed frame.

use crate::cache::InstanceCache;
use crate::job::{JobState, JobTable};
use crate::queue::JobQueue;
use crate::wire::{
    self, DynamicParams, EpochInfo, FrontPoint, JobResult, JobSpec, PortfolioParams, Request,
    Response, RoundInfo,
};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tsmo_core::{CancelToken, ParallelVariant, StopCause, TsmoConfig, TsmoOutcome};
use tsmo_obs::metrics::names;
use tsmo_obs::{MemoryRecorder, Recorder, SearchEvent};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads running jobs.
    pub workers: usize,
    /// Bounded queue capacity (admitted-but-not-started jobs).
    pub queue_capacity: usize,
    /// Upper bound on the shutdown drain.
    pub drain_timeout: Duration,
    /// Optional deterministic fault injection for the parallel variants
    /// (`(seed, rate)` as in `tsmo_faults::FaultConfig::uniform`).
    pub faults: Option<(u64, f64)>,
    /// Optional node mesh (`host:port` peer list of running `noded`
    /// daemons). When set, `collaborative` jobs are dispatched across the
    /// mesh via `tsmo_cluster::run_mesh` instead of running in-process:
    /// `processors` is split evenly over the nodes (at least one searcher
    /// each) and the merged multi-node front comes back as the job result.
    /// Deadlines bound the mesh wait, but cancellation does not propagate
    /// to remote nodes mid-run.
    pub mesh: Option<Vec<String>>,
    /// Byte budget of the instance/solution-pool cache (`served
    /// --cache-mb`); least-recently-used entries are evicted past it.
    /// `None` keeps the cache unbounded.
    pub cache_budget: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 16,
            drain_timeout: Duration::from_secs(120),
            faults: None,
            mesh: None,
            cache_budget: None,
        }
    }
}

struct Shared {
    queue: JobQueue,
    jobs: JobTable,
    cache: InstanceCache,
    /// Attached to every search run; drops events, keeps metrics.
    metrics: Arc<MemoryRecorder>,
    /// Job-lifecycle audit trail (a few events per job).
    events: Arc<MemoryRecorder>,
    draining: AtomicBool,
    stopping: AtomicBool,
    workers: usize,
    faults: Arc<dyn tsmo_faults::FaultHook>,
    /// Raw fault `(seed, rate)` — forwarded to mesh nodes, which build
    /// their own exchange-fault plans from it.
    fault_cfg: Option<(u64, f64)>,
    /// Peer list for distributed `collaborative` dispatch, when present.
    mesh: Option<Vec<String>>,
    drain_timeout: Duration,
}

impl Shared {
    fn health(&self) -> Response {
        Response::Health {
            status: if self.draining.load(Ordering::Acquire) {
                "draining".to_string()
            } else {
                "ok".to_string()
            },
            queued: self.queue.len() as u32,
            running: self.jobs.running_count(),
            workers: self.workers as u32,
        }
    }

    fn prometheus(&self) -> String {
        self.registry().to_prometheus()
    }

    /// The daemon's merged metrics registry: search metrics from the runs,
    /// lifecycle metrics from the service layer, and — when a node mesh is
    /// configured — every reachable node's registry folded in under a
    /// `node="k"` label, with a `tsmo_node_up{node="k"}` liveness gauge
    /// per peer. One `/metrics` scrape therefore observes the whole
    /// cluster.
    fn registry(&self) -> tsmo_obs::MetricsRegistry {
        let mut merged = self.metrics.metrics();
        merged.merge(&self.events.metrics());
        if let Some(peers) = &self.mesh {
            for (k, peer) in peers.iter().enumerate() {
                let node = k.to_string();
                let fetched = tsmo_cluster::mesh::MeshClient::new(
                    peer.clone(),
                    tsmo_cluster::DEFAULT_NET_TIMEOUT,
                )
                .metrics_registry();
                match fetched {
                    Ok(registry) => {
                        merged.merge(&registry.with_label("node", &node));
                        merged.gauge_set(&names::node_up(&node), 1.0);
                    }
                    Err(_) => merged.gauge_set(&names::node_up(&node), 0.0),
                }
            }
        }
        merged
    }
}

/// Recorder attached to a `record_events` job: the full event stream
/// (spans and timeline samples included) goes to the per-job recorder for
/// tailing, metrics go to the daemon's bounded shared registry, and every
/// closed span folds its wall time into both profiles.
struct TeeRecorder {
    events: Arc<MemoryRecorder>,
    metrics: Arc<MemoryRecorder>,
}

impl Recorder for TeeRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn event(&self, event: SearchEvent) {
        self.events.event(event);
    }

    fn counter_add(&self, name: &str, delta: u64) {
        self.metrics.counter_add(name, delta);
    }

    fn gauge_set(&self, name: &str, value: f64) {
        self.metrics.gauge_set(name, value);
    }

    fn gauge_max(&self, name: &str, value: f64) {
        self.metrics.gauge_max(name, value);
    }

    fn observe(&self, name: &str, value: f64) {
        self.metrics.observe(name, value);
    }

    fn profiling(&self) -> bool {
        true
    }

    fn span_start(&self, name: &'static str, trace: u64, parent: u64) -> u64 {
        self.events.span_start(name, trace, parent)
    }

    fn span_end(&self, name: &'static str, trace: u64, span: u64, wall_seconds: f64) {
        self.events.span_end(name, trace, span, wall_seconds);
        // Span id 0: the shared registry only folds the profile.
        self.metrics.span_end(name, trace, 0, wall_seconds);
    }
}

/// Maps the wire variant name onto the core enum.
fn parse_variant(name: &str, processors: usize) -> Result<ParallelVariant, String> {
    let p = processors.max(1);
    match name {
        "sequential" => Ok(ParallelVariant::Sequential),
        "synchronous" => Ok(ParallelVariant::Synchronous(p)),
        "asynchronous" => Ok(ParallelVariant::Asynchronous(p)),
        "collaborative" => Ok(ParallelVariant::Collaborative(p)),
        other => Err(format!(
            "unknown variant '{other}' (expected sequential|synchronous|asynchronous|collaborative)"
        )),
    }
}

/// Extracts the wire-level result payload from a finished run. The front
/// is the full non-dominated archive: time windows are *soft* (tardiness
/// is the third objective, not a constraint), so callers that need
/// hard-feasible solutions filter on `objectives[2] == 0` client-side.
fn job_result(outcome: &TsmoOutcome, cause: Option<StopCause>) -> JobResult {
    JobResult {
        evaluations: outcome.evaluations,
        iterations: outcome.iterations as u64,
        truncated: cause.is_some(),
        stop_cause: cause.map(|c| c.as_str().to_string()),
        front: front_points(&outcome.archive),
        epochs: Vec::new(),
        rounds: Vec::new(),
    }
}

/// Shapes a dynamic job's epoch sequence as a wire result: the final
/// epoch's front plus one [`EpochInfo`] per epoch, with the evaluation
/// and iteration totals summed across epochs.
fn dynamic_job_result(
    epochs: &[tsmo_scenario::EpochOutcome],
    cause: Option<StopCause>,
) -> JobResult {
    JobResult {
        evaluations: epochs.iter().map(|e| e.outcome.evaluations).sum(),
        iterations: epochs.iter().map(|e| e.outcome.iterations as u64).sum(),
        truncated: cause.is_some(),
        stop_cause: cause.map(|c| c.as_str().to_string()),
        front: epochs
            .last()
            .map(|e| front_points(&e.outcome.archive))
            .unwrap_or_default(),
        epochs: epochs
            .iter()
            .map(|e| EpochInfo {
                epoch: e.epoch as u64,
                mutations: e.mutations as u64,
                customers: e.customers as u64,
                warm_seeds: e.warm_seeds as u64,
                evaluations: e.outcome.evaluations,
                front_size: e.outcome.archive.len() as u64,
                best_distance: e
                    .outcome
                    .archive
                    .iter()
                    .map(|en| en.objectives.to_vector()[0])
                    .fold(f64::INFINITY, f64::min)
                    .min(f64::MAX), // empty archive stays JSON-finite
            })
            .collect(),
        rounds: Vec::new(),
    }
}

/// Shapes a portfolio race as a wire result: the stage-two merged front
/// plus one [`RoundInfo`] per scored round. Portfolio jobs track no
/// master-iteration count, so `iterations` reports completed rounds.
fn portfolio_job_result(
    outcome: &tsmo_portfolio::PortfolioOutcome,
    cause: Option<StopCause>,
) -> JobResult {
    JobResult {
        evaluations: outcome.evaluations,
        iterations: outcome.ledger.len() as u64,
        truncated: cause.is_some(),
        stop_cause: cause.map(|c| c.as_str().to_string()),
        front: front_points(&outcome.merged),
        epochs: Vec::new(),
        rounds: outcome
            .ledger
            .iter()
            .map(|round| RoundInfo {
                round: u64::from(round.round),
                winner: u64::from(round.winner),
                winner_algo: outcome
                    .contenders
                    .get(round.winner as usize)
                    .map(|c| c.name.clone())
                    .unwrap_or_default(),
                allocated: round.entries.iter().map(|e| e.allocated).sum(),
                spent: round.entries.iter().map(|e| e.spent).sum(),
                retired: round.retired.len() as u64,
                best_coverage: round
                    .entries
                    .iter()
                    .find(|e| e.contender == round.winner)
                    .map_or(0.0, |e| e.coverage),
            })
            .collect(),
    }
}

fn front_points(front: &[tsmo_core::FrontEntry]) -> Vec<FrontPoint> {
    front
        .iter()
        .map(|e| FrontPoint {
            objectives: e.objectives.to_vector(),
            routes: e
                .solution
                .routes()
                .iter()
                .filter(|r| !r.is_empty())
                .map(|r| r.to_vec())
                .collect(),
        })
        .collect()
}

/// Runs a `collaborative` job across the configured node mesh and shapes
/// the merged multi-node outcome as a wire result. `processors` is split
/// evenly over the nodes, each node getting at least one searcher. The
/// deadline (when given) bounds the mesh wait; cancellation cannot reach
/// remote nodes mid-run, so a cancelled mesh job fails instead of
/// truncating.
fn run_mesh_job(
    peers: &[String],
    fault_cfg: Option<(u64, f64)>,
    spec: &JobSpec,
    instance: &vrptw::Instance,
    wait_cap: Duration,
) -> Result<JobResult, String> {
    let searchers_per_node = spec.processors.max(1).div_ceil(peers.len()).max(1);
    let job = tsmo_cluster::MeshJob {
        // The job table drops its instance-text copy at admission (the
        // parsed instance is what jobs run on), so re-serialize it for
        // the remote nodes.
        instance_text: vrptw::solomon::write(instance),
        node_index: 0,
        peers: peers.to_vec(),
        searchers_per_node,
        seed: spec.seed,
        max_evaluations: spec.max_evaluations,
        neighborhood_size: spec.neighborhood_size.max(2),
        stagnation_limit: TsmoConfig::default().stagnation_limit,
        fault_seed: fault_cfg.map_or(0, |(seed, _)| seed),
        fault_rate: fault_cfg.map_or(0.0, |(_, rate)| rate),
        // Every node stamps its spans with the one id derived from the
        // job seed, so `clusterctl trace-merge` can assemble one trace.
        trace_id: tsmo_obs::trace_id_from_seed(spec.seed),
        // Ring-replicate each node's archive once a second: the mesh
        // tolerates a node dying mid-run (its front is recovered from the
        // successor's replica at gather) at negligible steady-state cost.
        replication_ms: 1_000,
        ..tsmo_cluster::MeshJob::default()
    };
    let wait = spec.deadline_ms.map_or(wait_cap, Duration::from_millis);
    let outcome = tsmo_cluster::run_mesh(&job, tsmo_cluster::DEFAULT_NET_TIMEOUT, wait)
        .map_err(|e| format!("mesh dispatch failed: {e}"))?;
    Ok(JobResult {
        evaluations: outcome.evaluations,
        iterations: outcome.iterations,
        truncated: false,
        stop_cause: None,
        front: front_points(&outcome.front),
        epochs: Vec::new(),
        rounds: Vec::new(),
    })
}

/// A running solver daemon. Dropping the handle does *not* stop it; call
/// [`shutdown`](Server::shutdown) (drain-then-stop) or send the wire
/// `Shutdown` request.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and the accept loop, and returns.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let faults: Arc<dyn tsmo_faults::FaultHook> = match config.faults {
            Some((seed, rate)) => {
                tsmo_faults::FaultPlan::shared(tsmo_faults::FaultConfig::uniform(seed, rate))
            }
            None => tsmo_faults::none(),
        };
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_capacity),
            jobs: JobTable::new(),
            cache: InstanceCache::with_budget(config.cache_budget),
            metrics: Arc::new(MemoryRecorder::metrics_only()),
            events: Arc::new(MemoryRecorder::new()),
            draining: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            workers: config.workers.max(1),
            faults,
            fault_cfg: config.faults,
            mesh: config.mesh.filter(|peers| !peers.is_empty()),
            drain_timeout: config.drain_timeout,
        });
        // Register the depth gauge up front so a fresh daemon's /metrics
        // already exposes it.
        shared.metrics.gauge_set(names::QUEUE_DEPTH, 0.0);
        let workers = (0..shared.workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tsmo-serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tsmo-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn accept thread")
        };
        Ok(Server {
            shared,
            local_addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Prometheus exposition of the daemon's merged metrics.
    pub fn prometheus(&self) -> String {
        self.shared.prometheus()
    }

    /// The job-lifecycle audit trail as JSONL (admission, rejection,
    /// completion events).
    pub fn events_jsonl(&self) -> String {
        self.shared.events.events_jsonl()
    }

    /// Number of distinct instances in the parse cache.
    pub fn cached_instances(&self) -> usize {
        self.shared.cache.len()
    }

    /// Blocks until the daemon has been shut down (by the wire `Shutdown`
    /// request or [`shutdown`](Server::shutdown) from another thread).
    pub fn wait(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Drains the queue (running jobs finish, queued jobs run, new
    /// submissions are rejected), stops the workers and the accept loop,
    /// and joins every thread.
    pub fn shutdown(mut self) {
        drain(&self.shared);
        stop_accepting(&self.shared, self.local_addr);
        self.wait();
    }
}

/// Phase one of shutdown: reject new work, let the backlog finish.
fn drain(shared: &Shared) {
    shared.draining.store(true, Ordering::Release);
    shared.queue.close();
    // A timed-out drain still proceeds to stop — per-job deadlines bound
    // how long a stuck job can hold the daemon.
    let _ = shared.jobs.wait_all_terminal(shared.drain_timeout);
}

/// Phase two: break the accept loop (self-connect to wake it).
fn stop_accepting(shared: &Shared, addr: std::net::SocketAddr) {
    shared.stopping.store(true, Ordering::Release);
    let _ = TcpStream::connect(addr);
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        // Handler threads are detached: they exit at client EOF, and
        // shutdown responses are written before the daemon stops.
        let _ = std::thread::Builder::new()
            .name("tsmo-serve-conn".to_string())
            .spawn(move || handle_connection(stream, &shared));
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let mut probe = [0u8; 4];
    let Ok(n) = stream.peek(&mut probe) else {
        return;
    };
    if &probe[..n] == b"GET " {
        handle_http(stream, shared);
        return;
    }
    let mut reader = BufReader::new(stream.try_clone().expect("clone TCP stream"));
    let mut writer = BufWriter::new(stream);
    while let Ok(Some(payload)) = wire::read_frame(&mut reader) {
        let (response, shutdown_after) = match Request::parse(&payload) {
            // Tail breaks the one-request-one-response contract: it
            // streams TailEvent frames until the job is terminal and
            // drained, then closes with TailDone.
            Ok(Request::Tail { job }) => {
                if tail_job(shared, job, &mut writer) {
                    continue;
                }
                return;
            }
            Ok(req) => handle_request(shared, req),
            Err(e) => (
                Response::Error {
                    message: format!("bad request: {e}"),
                },
                false,
            ),
        };
        if wire::write_frame(&mut writer, &response.to_json()).is_err() {
            return;
        }
        if shutdown_after {
            // Drain already ran inside handle_request; now break the
            // accept loop. This connection ends with the flush above.
            if let Ok(addr) = writer.get_ref().local_addr() {
                stop_accepting(shared, addr);
            }
            return;
        }
    }
}

/// Streams a tailed job's events to the client. Returns `false` when the
/// connection broke mid-stream (the caller then drops it).
fn tail_job(shared: &Arc<Shared>, job: u64, writer: &mut BufWriter<TcpStream>) -> bool {
    let Some(recorder) = shared.jobs.events_recorder(job) else {
        let response = match shared.jobs.state_name(job) {
            Some(_) => Response::Error {
                message: format!("job {job} does not record events (submit with record_events)"),
            },
            None => Response::NotFound { job },
        };
        return wire::write_frame(writer, &response.to_json()).is_ok();
    };
    let mut sent: u64 = 0;
    loop {
        let batch = recorder.events_since(sent);
        for ev in &batch {
            let frame = Response::TailEvent {
                job,
                line: ev.to_json_line(),
            }
            .to_json();
            if wire::write_frame(writer, &frame).is_err() {
                return false;
            }
        }
        sent += batch.len() as u64;
        if writer.flush().is_err() {
            return false;
        }
        // Done when the job is terminal and nothing arrived after the
        // last drain; a removed job (rejected submit) counts as terminal.
        let terminal = shared
            .jobs
            .with_job(job, |j| j.state.is_terminal())
            .unwrap_or(true);
        if terminal && recorder.events_since(sent).is_empty() {
            break;
        }
        if batch.is_empty() {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let done = Response::TailDone { job, events: sent }.to_json();
    wire::write_frame(writer, &done).is_ok() && writer.flush().is_ok()
}

/// Serves the two HTTP endpoints on the shared port.
fn handle_http(stream: TcpStream, shared: &Shared) {
    let mut reader = BufReader::new(stream.try_clone().expect("clone TCP stream"));
    let mut request_line = String::new();
    let mut byte = [0u8; 1];
    // Read up to the first CRLF; the request line is all we route on.
    while request_line.len() < 1024 && reader.read_exact(&mut byte).is_ok() {
        if byte[0] == b'\n' {
            break;
        }
        request_line.push(byte[0] as char);
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, content_type, body) = match path {
        "/healthz" => {
            let Response::Health {
                status,
                queued,
                running,
                workers,
            } = shared.health()
            else {
                unreachable!("health() returns Response::Health");
            };
            (
                "200 OK",
                "application/json",
                format!(
                    "{{\"status\":\"{status}\",\"queued\":{queued},\"running\":{running},\"workers\":{workers}}}\n"
                ),
            )
        }
        "/metrics" => ("200 OK", "text/plain; version=0.0.4", shared.prometheus()),
        _ => (
            "404 Not Found",
            "text/plain",
            "only /healthz and /metrics live here\n".to_string(),
        ),
    };
    let mut out = BufWriter::new(stream);
    let _ = write!(
        out,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = out.flush();
}

/// Serves one request. The bool asks the connection loop to stop the
/// daemon after responding (wire shutdown).
fn handle_request(shared: &Arc<Shared>, req: Request) -> (Response, bool) {
    match req {
        Request::Submit(spec) => (handle_submit(shared, spec, None, None), false),
        Request::SubmitDynamic { spec, dynamic } => {
            let response = if dynamic.epochs == 0 {
                Response::Error {
                    message: "dynamic jobs need at least one epoch".to_string(),
                }
            } else if dynamic.epochs > 64 {
                Response::Error {
                    message: "dynamic jobs are capped at 64 epochs".to_string(),
                }
            } else {
                handle_submit(shared, spec, Some(dynamic), None)
            };
            (response, false)
        }
        Request::SubmitPortfolio { spec, portfolio } => {
            let response = if let Err(e) = validate_portfolio(&portfolio) {
                Response::Error { message: e }
            } else {
                handle_submit(shared, spec, None, Some(portfolio))
            };
            (response, false)
        }
        Request::Status { job } => (
            match shared.jobs.state_name(job) {
                Some(state) => Response::JobStatus {
                    job,
                    state: state.to_string(),
                },
                None => Response::NotFound { job },
            },
            false,
        ),
        Request::Cancel { job } => (
            match shared.jobs.with_job(job, |j| j.cancel.cancel()) {
                Some(()) => {
                    shared.events.event(SearchEvent::JobCancelled { job });
                    Response::CancelAccepted { job }
                }
                None => Response::NotFound { job },
            },
            false,
        ),
        Request::Result { job } => (
            match shared.jobs.result(job) {
                None => Response::NotFound { job },
                Some(None) => Response::Error {
                    message: format!(
                        "job {job} is not done (state: {})",
                        shared.jobs.state_name(job).unwrap_or("unknown")
                    ),
                },
                Some(Some(result)) => Response::JobResult { job, result },
            },
            false,
        ),
        // Tail never reaches here: the connection loop intercepts it to
        // stream multiple frames. Answer defensively anyway.
        Request::Tail { job } => (Response::NotFound { job }, false),
        Request::Health => (shared.health(), false),
        Request::Metrics => (
            Response::Metrics {
                prometheus: shared.prometheus(),
            },
            false,
        ),
        Request::MetricsJson => (
            Response::MetricsJson {
                registry: shared.registry().to_json(),
            },
            false,
        ),
        Request::Shutdown => {
            drain(shared);
            (
                Response::ShutdownComplete {
                    jobs_completed: shared.jobs.terminal_count(),
                },
                true,
            )
        }
    }
}

/// Rejects a portfolio submission the worker could not run.
fn validate_portfolio(portfolio: &PortfolioParams) -> Result<(), String> {
    if portfolio.algos.is_empty() {
        return Err("portfolio jobs need at least one contender".to_string());
    }
    if portfolio.rounds == 0 {
        return Err("portfolio jobs need at least one round".to_string());
    }
    if portfolio.rounds > 64 {
        return Err("portfolio jobs are capped at 64 rounds".to_string());
    }
    let params = tsmo_portfolio::RaceParams::default();
    for name in &portfolio.algos {
        if tsmo_portfolio::contender(name, &params).is_none() {
            return Err(format!(
                "unknown portfolio algorithm '{}' (expected one of {})",
                name,
                tsmo_portfolio::KNOWN_ALGORITHMS.join("|")
            ));
        }
    }
    Ok(())
}

fn handle_submit(
    shared: &Shared,
    spec: JobSpec,
    dynamic: Option<DynamicParams>,
    portfolio: Option<PortfolioParams>,
) -> Response {
    if shared.draining.load(Ordering::Acquire) {
        return Response::Error {
            message: "daemon is draining; not accepting jobs".to_string(),
        };
    }
    if let Err(e) = parse_variant(&spec.variant, spec.processors) {
        return Response::Error { message: e };
    }
    let (instance, hit) = match shared.cache.get_or_parse(&spec.instance_text) {
        Ok(pair) => pair,
        Err(e) => return Response::Error { message: e },
    };
    shared.metrics.counter_add(
        if hit {
            names::INSTANCE_CACHE_HITS
        } else {
            names::INSTANCE_CACHE_MISSES
        },
        1,
    );
    let cancel = CancelToken::with_limits(
        spec.deadline_ms.map(Duration::from_millis),
        spec.max_iterations,
    );
    let job = shared
        .jobs
        .admit(spec, dynamic, portfolio, instance, cancel);
    match shared.queue.push(job) {
        Ok(depth) => {
            shared.metrics.counter_add(names::JOBS_ADMITTED, 1);
            shared.metrics.gauge_set(names::QUEUE_DEPTH, depth as f64);
            shared.events.event(SearchEvent::JobAdmitted {
                job,
                depth: depth as u32,
            });
            Response::Submitted {
                job,
                depth: depth as u32,
            }
        }
        Err(full) => {
            shared.jobs.remove(job);
            shared.metrics.counter_add(names::JOBS_REJECTED, 1);
            shared.events.event(SearchEvent::JobRejected {
                job,
                depth: full.capacity as u32,
            });
            Response::QueueFull {
                capacity: full.capacity as u32,
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(id) = shared.queue.pop() {
        shared
            .metrics
            .gauge_set(names::QUEUE_DEPTH, shared.queue.len() as f64);
        let Some((spec, dynamic, portfolio, instance, cancel, submitted, job_events)) =
            shared.jobs.with_job(id, |j| {
                j.state = JobState::Running;
                (
                    j.spec.clone(),
                    j.dynamic.clone(),
                    j.portfolio.clone(),
                    Arc::clone(&j.instance),
                    j.cancel.clone(),
                    j.submitted,
                    j.events.clone(),
                )
            })
        else {
            continue; // job was removed (rejected submit); nothing to run
        };
        let variant = match parse_variant(&spec.variant, spec.processors) {
            Ok(v) => v,
            Err(e) => {
                // Validated at submit; defensive for future wire changes.
                shared.jobs.with_job(id, |j| j.state = JobState::Failed(e));
                continue;
            }
        };
        let cfg = TsmoConfig {
            max_evaluations: spec.max_evaluations,
            neighborhood_size: spec.neighborhood_size.max(2),
            // Tailing jobs also stream the convergence timeline: one
            // front sample per ~10 iterations' worth of evaluations.
            timeline_every: spec
                .record_events
                .then(|| spec.neighborhood_size.max(2) as u64 * 10),
            ..TsmoConfig::default()
        }
        .with_seed(spec.seed);
        let recorder: Arc<dyn Recorder> = match &job_events {
            Some(events) => Arc::new(TeeRecorder {
                events: Arc::clone(events),
                metrics: Arc::clone(&shared.metrics),
            }),
            None => Arc::clone(&shared.metrics) as Arc<dyn Recorder>,
        };
        if let Some(pp) = &portfolio {
            // Portfolio races run in-process; the race is about budget
            // shares, not thread-level parallelism.
            run_portfolio_job(
                shared, id, pp, &spec, &instance, recorder, &cancel, submitted,
            );
            continue;
        }
        if let Some(dp) = &dynamic {
            // Dynamic jobs run their epochs in-process (no mesh dispatch).
            run_dynamic_job(
                shared, id, dp, variant, cfg, &instance, recorder, &cancel, submitted,
            );
            continue;
        }
        if let (ParallelVariant::Collaborative(_), Some(peers)) = (&variant, shared.mesh.as_ref()) {
            // Distributed dispatch: the mesh nodes run the searchers; this
            // worker only waits, gathers, and records the outcome.
            match run_mesh_job(
                peers,
                shared.fault_cfg,
                &spec,
                &instance,
                shared.drain_timeout,
            ) {
                Ok(result) => {
                    shared.metrics.counter_add(names::JOBS_COMPLETED, 1);
                    shared.metrics.observe(
                        names::JOB_LATENCY_MS,
                        submitted.elapsed().as_secs_f64() * 1000.0,
                    );
                    shared.events.event(SearchEvent::JobCompleted {
                        job: id,
                        iterations: result.iterations,
                        truncated: result.truncated,
                    });
                    shared
                        .jobs
                        .with_job(id, |j| j.state = JobState::Done(result));
                }
                Err(e) => {
                    shared.jobs.with_job(id, |j| j.state = JobState::Failed(e));
                }
            }
            continue;
        }
        let outcome = variant.run_with_cancel(
            &instance,
            &cfg,
            recorder,
            Arc::clone(&shared.faults),
            cancel.clone(),
        );
        let cause = cancel.cause();
        match cause {
            Some(StopCause::Cancelled) => shared.metrics.counter_add(names::JOBS_CANCELLED, 1),
            Some(StopCause::DeadlineExceeded) => {
                shared.metrics.counter_add(names::JOBS_DEADLINE_EXCEEDED, 1);
                shared
                    .events
                    .event(SearchEvent::JobDeadlineExceeded { job: id });
            }
            Some(StopCause::IterationLimit) | None => {}
        }
        // Deposit the front as the instance's solution pool (keyed by its
        // canonical serialization) so a later dynamic job on the same
        // content warm-starts from it instead of constructing cold.
        let pool: Vec<vrptw::Solution> =
            outcome.archive.iter().map(|e| e.solution.clone()).collect();
        if !pool.is_empty() {
            shared
                .cache
                .pool_put(&vrptw::solomon::write(&instance), pool);
        }
        let result = job_result(&outcome, cause);
        shared.metrics.counter_add(names::JOBS_COMPLETED, 1);
        shared.metrics.observe(
            names::JOB_LATENCY_MS,
            submitted.elapsed().as_secs_f64() * 1000.0,
        );
        shared.events.event(SearchEvent::JobCompleted {
            job: id,
            iterations: result.iterations,
            truncated: result.truncated,
        });
        shared
            .jobs
            .with_job(id, |j| j.state = JobState::Done(result));
    }
}

/// Runs one portfolio race: builds the named contenders with the spec's
/// sizing, races them on slices of `spec.max_evaluations` under the job's
/// cancel token, and deposits the stage-two merged front as the
/// instance's solution pool (a later dynamic or portfolio job on the same
/// content warm-starts from it). The race's events and counters flow
/// through the job's recorder, so a `record_events` portfolio job can be
/// tailed round by round.
#[allow(clippy::too_many_arguments)]
fn run_portfolio_job(
    shared: &Shared,
    id: u64,
    pp: &PortfolioParams,
    spec: &JobSpec,
    instance: &Arc<vrptw::Instance>,
    recorder: Arc<dyn Recorder>,
    cancel: &CancelToken,
    submitted: std::time::Instant,
) {
    let params = tsmo_portfolio::RaceParams {
        neighborhood_size: spec.neighborhood_size.max(2),
        processors: spec.processors.max(1),
        ..tsmo_portfolio::RaceParams::default()
    };
    let contenders: Vec<_> = pp
        .algos
        .iter()
        .filter_map(|name| tsmo_portfolio::contender(name, &params))
        .collect();
    if contenders.len() != pp.algos.len() {
        // Validated at submit; defensive for future wire changes.
        shared.jobs.with_job(id, |j| {
            j.state = JobState::Failed("unknown portfolio algorithm".to_string());
        });
        return;
    }
    let cfg = tsmo_portfolio::PortfolioConfig {
        rounds: pp.rounds,
        total_evaluations: spec.max_evaluations,
        seed: spec.seed,
        floor: pp.floor,
        eta: pp.eta,
        softmax_beta: pp.softmax_beta,
        retire_after: pp.retire_after,
        ..tsmo_portfolio::PortfolioConfig::default()
    };
    let outcome =
        tsmo_portfolio::Portfolio::new(cfg).run(instance, contenders, recorder, cancel.clone());
    let pool: Vec<vrptw::Solution> = outcome.merged.iter().map(|e| e.solution.clone()).collect();
    if !pool.is_empty() {
        shared
            .cache
            .pool_put(&vrptw::solomon::write(instance), pool);
    }
    let cause = cancel.cause();
    match cause {
        Some(StopCause::Cancelled) => shared.metrics.counter_add(names::JOBS_CANCELLED, 1),
        Some(StopCause::DeadlineExceeded) => {
            shared.metrics.counter_add(names::JOBS_DEADLINE_EXCEEDED, 1);
            shared
                .events
                .event(SearchEvent::JobDeadlineExceeded { job: id });
        }
        Some(StopCause::IterationLimit) | None => {}
    }
    let result = portfolio_job_result(&outcome, cause);
    shared.metrics.counter_add(names::JOBS_COMPLETED, 1);
    shared.metrics.observe(
        names::JOB_LATENCY_MS,
        submitted.elapsed().as_secs_f64() * 1000.0,
    );
    shared.events.event(SearchEvent::JobCompleted {
        job: id,
        iterations: result.iterations,
        truncated: result.truncated,
    });
    shared
        .jobs
        .with_job(id, |j| j.state = JobState::Done(result));
}

/// Runs one dynamic re-optimization job: regenerates the scenario script
/// from `(instance, script_seed)`, reads the cache's solution pool for
/// the base instance (epoch 0's warm start, when warm), runs the epochs
/// via [`tsmo_scenario::run_dynamic`], and deposits every epoch's front
/// back into the cache under the mutated instance's canonical text.
#[allow(clippy::too_many_arguments)]
fn run_dynamic_job(
    shared: &Shared,
    id: u64,
    dp: &DynamicParams,
    variant: ParallelVariant,
    cfg: TsmoConfig,
    instance: &Arc<vrptw::Instance>,
    recorder: Arc<dyn Recorder>,
    cancel: &CancelToken,
    submitted: std::time::Instant,
) {
    let script = tsmo_scenario::ScenarioScript::generate(
        instance,
        dp.script_seed,
        dp.epochs,
        dp.mutations_per_epoch.max(1),
    );
    let initial_pool = if dp.warm {
        shared.cache.pool_get(&vrptw::solomon::write(instance))
    } else {
        Vec::new()
    };
    let mut dc = tsmo_scenario::DynamicConfig::new(variant, cfg);
    dc.warm = dp.warm;
    let epochs = tsmo_scenario::run_dynamic(
        instance,
        &script,
        &dc,
        initial_pool,
        recorder,
        cancel.clone(),
    );
    for (e, inst) in epochs.iter().zip(script.instances(instance).iter()) {
        let pool: Vec<vrptw::Solution> = e
            .outcome
            .archive
            .iter()
            .map(|en| en.solution.clone())
            .collect();
        if !pool.is_empty() {
            shared.cache.pool_put(&vrptw::solomon::write(inst), pool);
        }
    }
    let cause = cancel.cause();
    match cause {
        Some(StopCause::Cancelled) => shared.metrics.counter_add(names::JOBS_CANCELLED, 1),
        Some(StopCause::DeadlineExceeded) => {
            shared.metrics.counter_add(names::JOBS_DEADLINE_EXCEEDED, 1);
            shared
                .events
                .event(SearchEvent::JobDeadlineExceeded { job: id });
        }
        Some(StopCause::IterationLimit) | None => {}
    }
    let result = dynamic_job_result(&epochs, cause);
    shared.metrics.counter_add(names::JOBS_COMPLETED, 1);
    shared.metrics.observe(
        names::JOB_LATENCY_MS,
        submitted.elapsed().as_secs_f64() * 1000.0,
    );
    shared.events.event(SearchEvent::JobCompleted {
        job: id,
        iterations: result.iterations,
        truncated: result.truncated,
    });
    shared
        .jobs
        .with_job(id, |j| j.state = JobState::Done(result));
}
