//! The wire protocol: length-prefixed JSON frames and the request /
//! response vocabulary.
//!
//! A frame is a big-endian `u32` payload length followed by that many
//! bytes of UTF-8 JSON. One request frame yields exactly one response
//! frame; a client may pipeline multiple requests on one connection.
//! Encoding reuses the zero-dependency JSON support from `tsmo-obs`
//! ([`tsmo_obs::json`]), so the whole service layer adds no external
//! dependencies. Field order is fixed by the writers, so equal messages
//! encode byte-identically — the same property the telemetry layer has.

use std::fmt::Write as _;
use tsmo_obs::json::{self, Json};

// Framing moved to `tsmo_obs::frame` so the cluster crate can share it
// without depending on the service layer; re-exported here so existing
// `wire::read_frame` / `wire::write_frame` callers keep compiling.
pub use tsmo_obs::frame::{read_frame, write_frame, MAX_FRAME_LEN};

/// What a client asks the daemon to run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The instance, as Solomon-format text (parsed — and cached by
    /// content hash — on the server).
    pub instance_text: String,
    /// Variant name: `sequential`, `synchronous`, `asynchronous`, or
    /// `collaborative`.
    pub variant: String,
    /// Processor / searcher count for the parallel variants (ignored by
    /// `sequential`).
    pub processors: usize,
    /// Evaluation budget.
    pub max_evaluations: u64,
    /// Neighborhood size per iteration.
    pub neighborhood_size: usize,
    /// Master seed.
    pub seed: u64,
    /// Optional deadline in milliseconds, measured from admission.
    pub deadline_ms: Option<u64>,
    /// Optional hard iteration cap (deterministic truncation).
    pub max_iterations: Option<u64>,
    /// Keep the job's full event stream (spans included) in memory so
    /// `Tail` can stream it. Off by default: event streams grow with run
    /// length, which is why the daemon's shared recorder is metrics-only.
    pub record_events: bool,
}

impl Default for JobSpec {
    fn default() -> Self {
        Self {
            instance_text: String::new(),
            variant: "sequential".to_string(),
            processors: 1,
            max_evaluations: 10_000,
            neighborhood_size: 50,
            seed: 0,
            deadline_ms: None,
            max_iterations: None,
            record_events: false,
        }
    }
}

/// How a dynamic re-optimization job unfolds. The server regenerates the
/// mutation script deterministically from `(instance, script_seed)`, so
/// the wire payload stays small and a resubmission replays the identical
/// scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicParams {
    /// Seed of the scenario script (mutation schedule).
    pub script_seed: u64,
    /// Total epochs, including the unmutated base epoch.
    pub epochs: usize,
    /// Mutations applied between consecutive epochs.
    pub mutations_per_epoch: usize,
    /// Warm-start each epoch from the previous front (and epoch 0 from
    /// the daemon's solution pool). `false` runs the cold control arm.
    pub warm: bool,
}

impl Default for DynamicParams {
    fn default() -> Self {
        Self {
            script_seed: 0,
            epochs: 3,
            mutations_per_epoch: 4,
            warm: true,
        }
    }
}

impl DynamicParams {
    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"script_seed\":{},\"epochs\":{},\"mutations_per_epoch\":{},\"warm\":{}}}",
            self.script_seed, self.epochs, self.mutations_per_epoch, self.warm
        );
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        Ok(Self {
            script_seed: req_u64(doc, "script_seed")?,
            epochs: req_u64(doc, "epochs")? as usize,
            mutations_per_epoch: req_u64(doc, "mutations_per_epoch")? as usize,
            // Lenient: absent means the default (warm).
            warm: doc.get("warm").and_then(Json::as_bool).unwrap_or(true),
        })
    }
}

/// How a portfolio race is set up. The per-slice search parameters
/// (budget, seed, neighborhood, processors) ride in the accompanying
/// [`JobSpec`]; these are the scheduler knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioParams {
    /// Contender algorithm names (`tsmo-seq`, `tsmo-sync`, `tsmo-async`,
    /// `tsmo-collab`, `nsga2`, `spea2`, `paes`).
    pub algos: Vec<String>,
    /// Racing rounds the budget is split into.
    pub rounds: u32,
    /// Budget floor as a fraction of the uniform share.
    pub floor: f64,
    /// η-greedy exploration rate.
    pub eta: f64,
    /// Softmax temperature over the coverage scores.
    pub softmax_beta: f64,
    /// Retire after this many consecutive floor rounds (0 disables).
    pub retire_after: u32,
}

impl Default for PortfolioParams {
    fn default() -> Self {
        Self {
            algos: vec![
                "tsmo-collab".to_string(),
                "nsga2".to_string(),
                "spea2".to_string(),
            ],
            rounds: 4,
            floor: 0.25,
            eta: 0.1,
            softmax_beta: 4.0,
            retire_after: 2,
        }
    }
}

impl PortfolioParams {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"algos\":[");
        for (i, a) in self.algos.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(out, a);
        }
        let _ = write!(out, "],\"rounds\":{},\"floor\":", self.rounds);
        json::write_f64(out, self.floor);
        out.push_str(",\"eta\":");
        json::write_f64(out, self.eta);
        out.push_str(",\"softmax_beta\":");
        json::write_f64(out, self.softmax_beta);
        let _ = write!(out, ",\"retire_after\":{}}}", self.retire_after);
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        let algos = match doc.get("algos") {
            Some(Json::Array(items)) => items
                .iter()
                .map(|a| {
                    a.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "bad 'algos' entry".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing 'algos' array".to_string()),
        };
        let defaults = Self::default();
        Ok(Self {
            algos,
            rounds: req_u64(doc, "rounds")? as u32,
            // Lenient: absent scheduler knobs take the defaults.
            floor: doc
                .get("floor")
                .and_then(Json::as_f64)
                .unwrap_or(defaults.floor),
            eta: doc
                .get("eta")
                .and_then(Json::as_f64)
                .unwrap_or(defaults.eta),
            softmax_beta: doc
                .get("softmax_beta")
                .and_then(Json::as_f64)
                .unwrap_or(defaults.softmax_beta),
            retire_after: doc
                .get("retire_after")
                .and_then(Json::as_u64)
                .map_or(defaults.retire_after, |v| v as u32),
        })
    }
}

/// A request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue a job; answered with `Submitted` or `QueueFull`.
    Submit(JobSpec),
    /// Enqueue a dynamic re-optimization job: the instance is mutated
    /// between epochs per a deterministic script and each epoch re-solves
    /// with `spec`'s budget. Answered like `Submit`.
    SubmitDynamic {
        /// The per-epoch search spec (the base instance rides in
        /// `instance_text`).
        spec: JobSpec,
        /// The scenario: script seed, epoch count, mutation rate, warm
        /// or cold.
        dynamic: DynamicParams,
    },
    /// Enqueue a portfolio race: the named algorithms share `spec`'s
    /// evaluation budget across scored rounds with coverage-driven
    /// reallocation. Answered like `Submit`.
    SubmitPortfolio {
        /// The shared search spec (instance, total budget, seed,
        /// neighborhood, processors).
        spec: JobSpec,
        /// The race: contender names and scheduler knobs.
        portfolio: PortfolioParams,
    },
    /// Query a job's lifecycle state.
    Status {
        /// The job to query.
        job: u64,
    },
    /// Cooperatively cancel a job (queued or running).
    Cancel {
        /// The job to cancel.
        job: u64,
    },
    /// Fetch a terminal job's result front.
    Result {
        /// The job whose result to fetch.
        job: u64,
    },
    /// Stream a job's recorded events (submitted with `record_events`).
    /// Unlike every other request, the answer is a *sequence* of frames:
    /// `TailEvent` per JSONL line as the job runs, then one `TailDone`.
    Tail {
        /// The job to tail.
        job: u64,
    },
    /// Liveness / readiness probe.
    Health,
    /// Prometheus text exposition of the daemon's metrics.
    Metrics,
    /// The daemon's metrics as a mergeable JSON registry. Unlike
    /// `Metrics`, whose prometheus text is render-only, this answer can
    /// be re-parsed with [`tsmo_obs::MetricsRegistry::from_json`] and
    /// folded into a federated view.
    MetricsJson,
    /// Drain the queue, finish running jobs, then stop accepting work.
    /// Answered with `ShutdownComplete` *after* the drain finishes.
    Shutdown,
}

/// One entry of a result front: the objective vector plus the routes
/// realizing it.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontPoint {
    /// Minimization vector `[distance, vehicles, tardiness]`.
    pub objectives: [f64; 3],
    /// The deployed routes (customer ids, depot omitted).
    pub routes: Vec<Vec<u16>>,
}

/// Summary of one epoch of a dynamic job.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochInfo {
    /// Epoch index (0 = base instance).
    pub epoch: u64,
    /// Mutations applied before this epoch.
    pub mutations: u64,
    /// Customers of this epoch's instance.
    pub customers: u64,
    /// Warm-start seeds the epoch's searchers started from.
    pub warm_seeds: u64,
    /// Evaluations the epoch consumed.
    pub evaluations: u64,
    /// Size of the epoch's non-dominated front.
    pub front_size: u64,
    /// Best (minimum) total distance on the epoch's front.
    pub best_distance: f64,
}

/// Summary of one round of a portfolio job.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundInfo {
    /// Round index (0-based).
    pub round: u64,
    /// The round's coverage winner (contender index).
    pub winner: u64,
    /// The winner's algorithm name.
    pub winner_algo: String,
    /// Evaluations allocated across the round's live contenders.
    pub allocated: u64,
    /// Evaluations actually consumed.
    pub spent: u64,
    /// Contenders retired at the end of the round.
    pub retired: u64,
    /// The winner's mean coverage over the other live fronts.
    pub best_coverage: f64,
}

/// A terminal job's payload.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Evaluations actually consumed.
    pub evaluations: u64,
    /// Search iterations performed.
    pub iterations: u64,
    /// Whether the run was stopped before budget exhaustion.
    pub truncated: bool,
    /// Why it stopped early (`cancelled`, `deadline_exceeded`,
    /// `iteration_limit`), if it did.
    pub stop_cause: Option<String>,
    /// The non-dominated front of the run. Time windows are soft, so
    /// entries may carry tardiness (`objectives[2]`); filter on zero
    /// tardiness for hard-feasible solutions.
    pub front: Vec<FrontPoint>,
    /// Per-epoch summaries of a dynamic job; empty for plain submissions
    /// (whose single run *is* the result). For dynamic jobs `front` is
    /// the final epoch's front.
    pub epochs: Vec<EpochInfo>,
    /// Per-round summaries of a portfolio job; empty otherwise. For
    /// portfolio jobs `front` is the stage-two merged front.
    pub rounds: Vec<RoundInfo>,
}

/// A response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The job was admitted at the reported queue depth.
    Submitted {
        /// Assigned job id.
        job: u64,
        /// Queue depth right after admission.
        depth: u32,
    },
    /// Backpressure: the queue is at capacity; retry later.
    QueueFull {
        /// The configured queue capacity.
        capacity: u32,
    },
    /// A job's current lifecycle state.
    JobStatus {
        /// The queried job.
        job: u64,
        /// `queued`, `running`, `done`, or `failed`.
        state: String,
    },
    /// Cancellation was requested (the job stops at its next iteration).
    CancelAccepted {
        /// The cancelled job.
        job: u64,
    },
    /// A terminal job's result.
    JobResult {
        /// The job the result belongs to.
        job: u64,
        /// The result payload.
        result: JobResult,
    },
    /// The daemon's health snapshot.
    Health {
        /// `ok` or `draining`.
        status: String,
        /// Jobs waiting in the queue.
        queued: u32,
        /// Jobs currently on a worker.
        running: u32,
        /// Worker threads serving the queue.
        workers: u32,
    },
    /// Prometheus text exposition.
    Metrics {
        /// The exposition body.
        prometheus: String,
    },
    /// The metrics registry as mergeable JSON.
    MetricsJson {
        /// `MetricsRegistry::to_json` output; parse back with
        /// `MetricsRegistry::from_json`.
        registry: String,
    },
    /// Drain finished; the daemon stops after this response.
    ShutdownComplete {
        /// Jobs that reached a terminal state over the daemon's lifetime.
        jobs_completed: u64,
    },
    /// One live event line of a tailed job (JSONL without the newline).
    TailEvent {
        /// The tailed job.
        job: u64,
        /// One event, JSON-encoded.
        line: String,
    },
    /// End of a tail stream: the job is terminal and the stream drained.
    TailDone {
        /// The tailed job.
        job: u64,
        /// Total events streamed.
        events: u64,
    },
    /// The request referenced an unknown job id.
    NotFound {
        /// The unknown id.
        job: u64,
    },
    /// The request could not be served.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

fn write_opt_u64(out: &mut String, v: Option<u64>) {
    match v {
        Some(x) => {
            let _ = write!(out, "{x}");
        }
        None => out.push_str("null"),
    }
}

impl JobSpec {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"instance\":");
        json::write_str(out, &self.instance_text);
        out.push_str(",\"variant\":");
        json::write_str(out, &self.variant);
        let _ = write!(
            out,
            ",\"processors\":{},\"max_evaluations\":{},\"neighborhood_size\":{},\"seed\":{},\"deadline_ms\":",
            self.processors, self.max_evaluations, self.neighborhood_size, self.seed
        );
        write_opt_u64(out, self.deadline_ms);
        out.push_str(",\"max_iterations\":");
        write_opt_u64(out, self.max_iterations);
        let _ = write!(out, ",\"record_events\":{}", self.record_events);
        out.push('}');
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        Ok(Self {
            instance_text: req_str(doc, "instance")?.to_string(),
            variant: req_str(doc, "variant")?.to_string(),
            processors: req_u64(doc, "processors")? as usize,
            max_evaluations: req_u64(doc, "max_evaluations")?,
            neighborhood_size: req_u64(doc, "neighborhood_size")? as usize,
            seed: req_u64(doc, "seed")?,
            deadline_ms: opt_u64(doc, "deadline_ms")?,
            max_iterations: opt_u64(doc, "max_iterations")?,
            // Lenient for compatibility with pre-tail clients.
            record_events: doc
                .get("record_events")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        })
    }
}

impl Request {
    /// Encodes the request as one JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64);
        match self {
            Request::Submit(spec) => {
                s.push_str("{\"type\":\"submit\",\"spec\":");
                spec.write_json(&mut s);
                s.push('}');
            }
            Request::SubmitDynamic { spec, dynamic } => {
                s.push_str("{\"type\":\"submit_dynamic\",\"spec\":");
                spec.write_json(&mut s);
                s.push_str(",\"dynamic\":");
                dynamic.write_json(&mut s);
                s.push('}');
            }
            Request::SubmitPortfolio { spec, portfolio } => {
                s.push_str("{\"type\":\"submit_portfolio\",\"spec\":");
                spec.write_json(&mut s);
                s.push_str(",\"portfolio\":");
                portfolio.write_json(&mut s);
                s.push('}');
            }
            Request::Status { job } => {
                let _ = write!(s, "{{\"type\":\"status\",\"job\":{job}}}");
            }
            Request::Cancel { job } => {
                let _ = write!(s, "{{\"type\":\"cancel\",\"job\":{job}}}");
            }
            Request::Result { job } => {
                let _ = write!(s, "{{\"type\":\"result\",\"job\":{job}}}");
            }
            Request::Tail { job } => {
                let _ = write!(s, "{{\"type\":\"tail\",\"job\":{job}}}");
            }
            Request::Health => s.push_str("{\"type\":\"health\"}"),
            Request::Metrics => s.push_str("{\"type\":\"metrics\"}"),
            Request::MetricsJson => s.push_str("{\"type\":\"metrics_json\"}"),
            Request::Shutdown => s.push_str("{\"type\":\"shutdown\"}"),
        }
        s
    }

    /// Parses a request document.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        match req_str(&doc, "type")? {
            "submit" => Ok(Request::Submit(JobSpec::from_json(
                doc.get("spec").ok_or("missing 'spec' field")?,
            )?)),
            "submit_dynamic" => Ok(Request::SubmitDynamic {
                spec: JobSpec::from_json(doc.get("spec").ok_or("missing 'spec' field")?)?,
                dynamic: DynamicParams::from_json(
                    doc.get("dynamic").ok_or("missing 'dynamic' field")?,
                )?,
            }),
            "submit_portfolio" => Ok(Request::SubmitPortfolio {
                spec: JobSpec::from_json(doc.get("spec").ok_or("missing 'spec' field")?)?,
                portfolio: PortfolioParams::from_json(
                    doc.get("portfolio").ok_or("missing 'portfolio' field")?,
                )?,
            }),
            "status" => Ok(Request::Status {
                job: req_u64(&doc, "job")?,
            }),
            "cancel" => Ok(Request::Cancel {
                job: req_u64(&doc, "job")?,
            }),
            "result" => Ok(Request::Result {
                job: req_u64(&doc, "job")?,
            }),
            "tail" => Ok(Request::Tail {
                job: req_u64(&doc, "job")?,
            }),
            "health" => Ok(Request::Health),
            "metrics" => Ok(Request::Metrics),
            "metrics_json" => Ok(Request::MetricsJson),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request type '{other}'")),
        }
    }
}

impl JobResult {
    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"evaluations\":{},\"iterations\":{},\"truncated\":{},\"stop_cause\":",
            self.evaluations, self.iterations, self.truncated
        );
        match &self.stop_cause {
            Some(c) => json::write_str(out, c),
            None => out.push_str("null"),
        }
        out.push_str(",\"front\":[");
        for (i, p) in self.front.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, x) in p.objectives.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json::write_f64(out, *x);
            }
            out.push(']');
        }
        out.push_str("],\"routes\":[");
        for (i, p) in self.front.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, route) in p.routes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                for (k, site) in route.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{site}");
                }
                out.push(']');
            }
            out.push(']');
        }
        out.push_str("],\"epochs\":[");
        for (i, e) in self.epochs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"epoch\":{},\"mutations\":{},\"customers\":{},\"warm_seeds\":{},\"evaluations\":{},\"front_size\":{},\"best_distance\":",
                e.epoch, e.mutations, e.customers, e.warm_seeds, e.evaluations, e.front_size
            );
            json::write_f64(out, e.best_distance);
            out.push('}');
        }
        out.push_str("],\"rounds\":[");
        for (i, r) in self.rounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"round\":{},\"winner\":{},\"winner_algo\":",
                r.round, r.winner
            );
            json::write_str(out, &r.winner_algo);
            let _ = write!(
                out,
                ",\"allocated\":{},\"spent\":{},\"retired\":{},\"best_coverage\":",
                r.allocated, r.spent, r.retired
            );
            json::write_f64(out, r.best_coverage);
            out.push('}');
        }
        out.push_str("]}");
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        let front_vectors = match doc.get("front") {
            Some(Json::Array(items)) => items
                .iter()
                .map(objective_vector)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing 'front' array".to_string()),
        };
        let routes_per_point = match doc.get("routes") {
            Some(Json::Array(items)) => items
                .iter()
                .map(routes_from)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing 'routes' array".to_string()),
        };
        if front_vectors.len() != routes_per_point.len() {
            return Err("'front' and 'routes' lengths differ".to_string());
        }
        Ok(Self {
            evaluations: req_u64(doc, "evaluations")?,
            iterations: req_u64(doc, "iterations")?,
            truncated: req_bool(doc, "truncated")?,
            stop_cause: match doc.get("stop_cause") {
                Some(Json::Null) | None => None,
                Some(v) => Some(v.as_str().ok_or("bad 'stop_cause' field")?.to_string()),
            },
            front: front_vectors
                .into_iter()
                .zip(routes_per_point)
                .map(|(objectives, routes)| FrontPoint { objectives, routes })
                .collect(),
            // Lenient for results written before dynamic jobs existed.
            epochs: match doc.get("epochs") {
                Some(Json::Array(items)) => items
                    .iter()
                    .map(epoch_info_from)
                    .collect::<Result<Vec<_>, _>>()?,
                _ => Vec::new(),
            },
            // Likewise for results that predate portfolio jobs.
            rounds: match doc.get("rounds") {
                Some(Json::Array(items)) => items
                    .iter()
                    .map(round_info_from)
                    .collect::<Result<Vec<_>, _>>()?,
                _ => Vec::new(),
            },
        })
    }
}

fn round_info_from(v: &Json) -> Result<RoundInfo, String> {
    Ok(RoundInfo {
        round: req_u64(v, "round")?,
        winner: req_u64(v, "winner")?,
        winner_algo: req_str(v, "winner_algo")?.to_string(),
        allocated: req_u64(v, "allocated")?,
        spent: req_u64(v, "spent")?,
        retired: req_u64(v, "retired")?,
        best_coverage: v
            .get("best_coverage")
            .and_then(Json::as_f64)
            .ok_or("bad 'best_coverage' field")?,
    })
}

fn epoch_info_from(v: &Json) -> Result<EpochInfo, String> {
    Ok(EpochInfo {
        epoch: req_u64(v, "epoch")?,
        mutations: req_u64(v, "mutations")?,
        customers: req_u64(v, "customers")?,
        warm_seeds: req_u64(v, "warm_seeds")?,
        evaluations: req_u64(v, "evaluations")?,
        front_size: req_u64(v, "front_size")?,
        best_distance: v
            .get("best_distance")
            .and_then(Json::as_f64)
            .ok_or("bad 'best_distance' field")?,
    })
}

impl Response {
    /// Encodes the response as one JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64);
        match self {
            Response::Submitted { job, depth } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"submitted\",\"job\":{job},\"depth\":{depth}}}"
                );
            }
            Response::QueueFull { capacity } => {
                let _ = write!(s, "{{\"type\":\"queue_full\",\"capacity\":{capacity}}}");
            }
            Response::JobStatus { job, state } => {
                let _ = write!(s, "{{\"type\":\"job_status\",\"job\":{job},\"state\":");
                json::write_str(&mut s, state);
                s.push('}');
            }
            Response::CancelAccepted { job } => {
                let _ = write!(s, "{{\"type\":\"cancel_accepted\",\"job\":{job}}}");
            }
            Response::JobResult { job, result } => {
                let _ = write!(s, "{{\"type\":\"job_result\",\"job\":{job},\"result\":");
                result.write_json(&mut s);
                s.push('}');
            }
            Response::Health {
                status,
                queued,
                running,
                workers,
            } => {
                s.push_str("{\"type\":\"health\",\"status\":");
                json::write_str(&mut s, status);
                let _ = write!(
                    s,
                    ",\"queued\":{queued},\"running\":{running},\"workers\":{workers}}}"
                );
            }
            Response::Metrics { prometheus } => {
                s.push_str("{\"type\":\"metrics\",\"prometheus\":");
                json::write_str(&mut s, prometheus);
                s.push('}');
            }
            Response::MetricsJson { registry } => {
                s.push_str("{\"type\":\"metrics_json\",\"registry\":");
                json::write_str(&mut s, registry);
                s.push('}');
            }
            Response::ShutdownComplete { jobs_completed } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"shutdown_complete\",\"jobs_completed\":{jobs_completed}}}"
                );
            }
            Response::TailEvent { job, line } => {
                let _ = write!(s, "{{\"type\":\"tail_event\",\"job\":{job},\"line\":");
                json::write_str(&mut s, line);
                s.push('}');
            }
            Response::TailDone { job, events } => {
                let _ = write!(
                    s,
                    "{{\"type\":\"tail_done\",\"job\":{job},\"events\":{events}}}"
                );
            }
            Response::NotFound { job } => {
                let _ = write!(s, "{{\"type\":\"not_found\",\"job\":{job}}}");
            }
            Response::Error { message } => {
                s.push_str("{\"type\":\"error\",\"message\":");
                json::write_str(&mut s, message);
                s.push('}');
            }
        }
        s
    }

    /// Parses a response document.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        match req_str(&doc, "type")? {
            "submitted" => Ok(Response::Submitted {
                job: req_u64(&doc, "job")?,
                depth: req_u64(&doc, "depth")? as u32,
            }),
            "queue_full" => Ok(Response::QueueFull {
                capacity: req_u64(&doc, "capacity")? as u32,
            }),
            "job_status" => Ok(Response::JobStatus {
                job: req_u64(&doc, "job")?,
                state: req_str(&doc, "state")?.to_string(),
            }),
            "cancel_accepted" => Ok(Response::CancelAccepted {
                job: req_u64(&doc, "job")?,
            }),
            "job_result" => Ok(Response::JobResult {
                job: req_u64(&doc, "job")?,
                result: JobResult::from_json(doc.get("result").ok_or("missing 'result' field")?)?,
            }),
            "health" => Ok(Response::Health {
                status: req_str(&doc, "status")?.to_string(),
                queued: req_u64(&doc, "queued")? as u32,
                running: req_u64(&doc, "running")? as u32,
                workers: req_u64(&doc, "workers")? as u32,
            }),
            "metrics" => Ok(Response::Metrics {
                prometheus: req_str(&doc, "prometheus")?.to_string(),
            }),
            "metrics_json" => Ok(Response::MetricsJson {
                registry: req_str(&doc, "registry")?.to_string(),
            }),
            "shutdown_complete" => Ok(Response::ShutdownComplete {
                jobs_completed: req_u64(&doc, "jobs_completed")?,
            }),
            "tail_event" => Ok(Response::TailEvent {
                job: req_u64(&doc, "job")?,
                line: req_str(&doc, "line")?.to_string(),
            }),
            "tail_done" => Ok(Response::TailDone {
                job: req_u64(&doc, "job")?,
                events: req_u64(&doc, "events")?,
            }),
            "not_found" => Ok(Response::NotFound {
                job: req_u64(&doc, "job")?,
            }),
            "error" => Ok(Response::Error {
                message: req_str(&doc, "message")?.to_string(),
            }),
            other => Err(format!("unknown response type '{other}'")),
        }
    }
}

fn req_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("bad '{key}' field"))
}

fn req_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("bad '{key}' field"))
}

fn req_bool(doc: &Json, key: &str) -> Result<bool, String> {
    doc.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("bad '{key}' field"))
}

fn opt_u64(doc: &Json, key: &str) -> Result<Option<u64>, String> {
    match doc.get(key) {
        Some(Json::Null) | None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("bad '{key}' field")),
    }
}

fn objective_vector(v: &Json) -> Result<[f64; 3], String> {
    match v {
        Json::Array(items) if items.len() == 3 => {
            let mut out = [0.0; 3];
            for (i, item) in items.iter().enumerate() {
                out[i] = item.as_f64().ok_or("non-numeric objective")?;
            }
            Ok(out)
        }
        _ => Err("objective vector must be a 3-element array".to_string()),
    }
}

fn routes_from(v: &Json) -> Result<Vec<Vec<u16>>, String> {
    match v {
        Json::Array(routes) => routes
            .iter()
            .map(|route| match route {
                Json::Array(sites) => sites
                    .iter()
                    .map(|s| {
                        s.as_u64()
                            .and_then(|x| u16::try_from(x).ok())
                            .ok_or_else(|| "bad site id".to_string())
                    })
                    .collect(),
                _ => Err("route must be an array".to_string()),
            })
            .collect(),
        _ => Err("routes entry must be an array of routes".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> JobResult {
        JobResult {
            evaluations: 5_000,
            iterations: 100,
            truncated: true,
            stop_cause: Some("deadline_exceeded".to_string()),
            front: vec![
                FrontPoint {
                    objectives: [512.25, 4.0, 0.0],
                    routes: vec![vec![1, 3, 2], vec![4], vec![5, 6]],
                },
                FrontPoint {
                    objectives: [600.0, 3.0, 0.0],
                    routes: vec![vec![1, 2, 3, 4], vec![5, 6]],
                },
            ],
            epochs: Vec::new(),
            rounds: Vec::new(),
        }
    }

    fn portfolio_result() -> JobResult {
        JobResult {
            rounds: vec![
                RoundInfo {
                    round: 0,
                    winner: 2,
                    winner_algo: "spea2".to_string(),
                    allocated: 2_500,
                    spent: 2_500,
                    retired: 0,
                    best_coverage: 0.75,
                },
                RoundInfo {
                    round: 1,
                    winner: 0,
                    winner_algo: "tsmo-collab".to_string(),
                    allocated: 2_500,
                    spent: 2_500,
                    retired: 1,
                    best_coverage: 0.5,
                },
            ],
            ..sample_result()
        }
    }

    fn dynamic_result() -> JobResult {
        JobResult {
            epochs: vec![
                EpochInfo {
                    epoch: 0,
                    mutations: 0,
                    customers: 6,
                    warm_seeds: 0,
                    evaluations: 2_500,
                    front_size: 2,
                    best_distance: 512.25,
                },
                EpochInfo {
                    epoch: 1,
                    mutations: 3,
                    customers: 7,
                    warm_seeds: 9,
                    evaluations: 2_500,
                    front_size: 1,
                    best_distance: 498.5,
                },
            ],
            ..sample_result()
        }
    }

    #[test]
    fn requests_round_trip() {
        let samples = vec![
            Request::Submit(JobSpec {
                instance_text: "R101\nline two\t\"quoted\"".to_string(),
                variant: "asynchronous".to_string(),
                processors: 4,
                max_evaluations: 20_000,
                neighborhood_size: 80,
                seed: 42,
                deadline_ms: Some(250),
                max_iterations: None,
                record_events: true,
            }),
            Request::Submit(JobSpec::default()),
            Request::SubmitDynamic {
                spec: JobSpec {
                    instance_text: "R101 base".to_string(),
                    ..JobSpec::default()
                },
                dynamic: DynamicParams {
                    script_seed: 11,
                    epochs: 4,
                    mutations_per_epoch: 2,
                    warm: false,
                },
            },
            Request::SubmitDynamic {
                spec: JobSpec::default(),
                dynamic: DynamicParams::default(),
            },
            Request::SubmitPortfolio {
                spec: JobSpec {
                    instance_text: "R101 base".to_string(),
                    max_evaluations: 9_000,
                    ..JobSpec::default()
                },
                portfolio: PortfolioParams {
                    algos: vec!["tsmo-seq".to_string(), "nsga2".to_string()],
                    rounds: 3,
                    floor: 0.2,
                    eta: 0.05,
                    softmax_beta: 2.0,
                    retire_after: 0,
                },
            },
            Request::SubmitPortfolio {
                spec: JobSpec::default(),
                portfolio: PortfolioParams::default(),
            },
            Request::Status { job: 7 },
            Request::Cancel { job: 7 },
            Request::Result { job: 9 },
            Request::Tail { job: 9 },
            Request::Health,
            Request::Metrics,
            Request::MetricsJson,
            Request::Shutdown,
        ];
        for req in samples {
            let text = req.to_json();
            let parsed = Request::parse(&text).expect("parse back");
            assert_eq!(parsed, req, "mismatch for {text}");
            assert_eq!(parsed.to_json(), text, "re-encode must be stable");
        }
    }

    #[test]
    fn responses_round_trip() {
        let samples = vec![
            Response::Submitted { job: 3, depth: 2 },
            Response::QueueFull { capacity: 8 },
            Response::JobStatus {
                job: 3,
                state: "running".to_string(),
            },
            Response::CancelAccepted { job: 3 },
            Response::JobResult {
                job: 3,
                result: sample_result(),
            },
            Response::JobResult {
                job: 4,
                result: dynamic_result(),
            },
            Response::JobResult {
                job: 5,
                result: portfolio_result(),
            },
            Response::Health {
                status: "ok".to_string(),
                queued: 2,
                running: 1,
                workers: 4,
            },
            Response::Metrics {
                prometheus: "# TYPE tsmo_jobs_admitted_total counter\ntsmo_jobs_admitted_total 4\n"
                    .to_string(),
            },
            Response::MetricsJson {
                registry: "{\"counters\":{\"tsmo_evaluations_total\":9}}".to_string(),
            },
            Response::ShutdownComplete { jobs_completed: 12 },
            Response::TailEvent {
                job: 3,
                line: "{\"seq\":0,\"type\":\"span_enter\",\"name\":\"search\"}".to_string(),
            },
            Response::TailDone { job: 3, events: 41 },
            Response::NotFound { job: 99 },
            Response::Error {
                message: "bad \"variant\"".to_string(),
            },
        ];
        for resp in samples {
            let text = resp.to_json();
            let parsed = Response::parse(&text).expect("parse back");
            assert_eq!(parsed, resp, "mismatch for {text}");
            assert_eq!(parsed.to_json(), text, "re-encode must be stable");
        }
    }

    #[test]
    fn old_clients_remain_parseable() {
        // Results written before dynamic jobs carry no "epochs" array.
        let legacy = "{\"type\":\"job_result\",\"job\":1,\"result\":\
                      {\"evaluations\":10,\"iterations\":2,\"truncated\":false,\
                      \"stop_cause\":null,\"front\":[[1.0,2.0,0.0]],\"routes\":[[[1]]]}}";
        let Response::JobResult { result, .. } = Response::parse(legacy).unwrap() else {
            panic!("parsed to the wrong variant");
        };
        assert!(result.epochs.is_empty());
        // Dynamic params without "warm" default to warm.
        let req = "{\"type\":\"submit_dynamic\",\"spec\":{\"instance\":\"X\",\
                   \"variant\":\"sequential\",\"processors\":1,\"max_evaluations\":5,\
                   \"neighborhood_size\":2,\"seed\":0,\"deadline_ms\":null,\
                   \"max_iterations\":null},\"dynamic\":{\"script_seed\":3,\
                   \"epochs\":2,\"mutations_per_epoch\":1}}";
        let Request::SubmitDynamic { dynamic, .. } = Request::parse(req).unwrap() else {
            panic!("parsed to the wrong variant");
        };
        assert!(dynamic.warm);
        // Portfolio params without scheduler knobs take the defaults.
        let req = "{\"type\":\"submit_portfolio\",\"spec\":{\"instance\":\"X\",\
                   \"variant\":\"sequential\",\"processors\":1,\"max_evaluations\":5,\
                   \"neighborhood_size\":2,\"seed\":0,\"deadline_ms\":null,\
                   \"max_iterations\":null},\"portfolio\":{\"algos\":[\"nsga2\",\
                   \"paes\"],\"rounds\":2}}";
        let Request::SubmitPortfolio { portfolio, .. } = Request::parse(req).unwrap() else {
            panic!("parsed to the wrong variant");
        };
        assert_eq!(portfolio.algos, vec!["nsga2", "paes"]);
        assert_eq!(portfolio.rounds, 2);
        let defaults = PortfolioParams::default();
        assert_eq!(portfolio.floor, defaults.floor);
        assert_eq!(portfolio.retire_after, defaults.retire_after);
    }

    #[test]
    fn frames_round_trip_through_the_reexport() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "first").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some("first"));
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }
}
