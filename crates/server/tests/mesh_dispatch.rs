//! The daemon's distributed path: a `collaborative` job submitted to a
//! mesh-configured `served` fans out over real `noded` daemons and the
//! merged multi-node front comes back through the ordinary job protocol.

use std::time::{Duration, Instant};
use tsmo_cluster::{NodeConfig, Noded};
use tsmo_serve::{Client, JobSpec, Server, ServerConfig};
use vrptw::generator::{GeneratorConfig, InstanceClass};

#[test]
fn collaborative_job_fans_out_over_the_node_mesh() {
    let nodes: Vec<Noded> = (0..2)
        .map(|_| Noded::start(NodeConfig::default()).expect("bind node"))
        .collect();
    let peers: Vec<String> = nodes.iter().map(|n| n.local_addr().to_string()).collect();
    let server = Server::start(ServerConfig {
        workers: 1,
        mesh: Some(peers),
        ..ServerConfig::default()
    })
    .expect("start daemon");

    let text = vrptw::solomon::write(&GeneratorConfig::new(InstanceClass::R2, 20, 5).build());
    let mut client =
        Client::connect_timeout(server.local_addr(), Duration::from_secs(2)).expect("connect");
    let job = client
        .submit(JobSpec {
            instance_text: text,
            variant: "collaborative".to_string(),
            processors: 4,
            max_evaluations: 5_000,
            neighborhood_size: 40,
            seed: 9,
            ..JobSpec::default()
        })
        .expect("submit")
        .expect("admitted");
    let result = client
        .wait_result(job, Duration::from_secs(120))
        .expect("mesh job completes");

    assert!(!result.front.is_empty(), "mesh job returned an empty front");
    // Two nodes x two searchers, each with the full 5,000-eval budget.
    assert_eq!(result.evaluations, 20_000);
    let objectives: Vec<[f64; 3]> = result.front.iter().map(|p| p.objectives).collect();
    assert_eq!(
        pareto::non_dominated_indices(&objectives).len(),
        objectives.len(),
        "merged mesh front must be mutually non-dominated"
    );
    // A mesh-fronting daemon's /metrics folds every node's registry in
    // under a node label, with a liveness gauge per peer: one scrape
    // observes the whole cluster.
    let prom = server.prometheus();
    for k in 0..2 {
        assert!(
            prom.contains(&format!("tsmo_evaluations_total{{node=\"{k}\"}}")),
            "missing node {k} evaluations in the federated exposition:\n{prom}"
        );
        assert!(
            prom.contains(&format!("tsmo_node_up{{node=\"{k}\"}} 1")),
            "missing node {k} liveness in the federated exposition:\n{prom}"
        );
    }
    assert!(
        prom.contains("tsmo_operator_proposed_total{node=\"0\",operator="),
        "federated exposition lost per-operator attribution:\n{prom}"
    );
    server.shutdown();
    for node in nodes {
        node.halt();
    }
}

#[test]
fn connect_timeout_fails_fast_when_no_daemon_listens() {
    // A bound-then-dropped listener yields a port where nothing listens:
    // the connect must fail within the timeout, not hang.
    let addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind probe");
        listener.local_addr().expect("probe addr")
    };
    let started = Instant::now();
    let result = Client::connect_timeout(addr, Duration::from_millis(500));
    assert!(result.is_err(), "connect to a dead port must fail");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "connect_timeout must bound the failure"
    );
}
