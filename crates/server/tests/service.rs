//! End-to-end tests of the solver daemon over real TCP connections:
//! concurrent submission, deadlines, cancellation, backpressure with
//! recovery, instance-cache sharing, HTTP endpoints, and the
//! drain-then-stop shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use tsmo_serve::{
    Client, DynamicParams, JobSpec, PortfolioParams, Request, Response, Server, ServerConfig,
};
use vrptw::generator::{GeneratorConfig, InstanceClass};

fn instance_text(customers: usize, seed: u64) -> String {
    // R2: wide time windows, so short runs still end with feasible fronts.
    vrptw::solomon::write(&GeneratorConfig::new(InstanceClass::R2, customers, seed).build())
}

fn quick_spec(text: &str, seed: u64) -> JobSpec {
    JobSpec {
        instance_text: text.to_string(),
        variant: "sequential".to_string(),
        max_evaluations: 4_000,
        neighborhood_size: 40,
        seed,
        ..JobSpec::default()
    }
}

/// A job that runs until cancelled (with a generous deadline safety net
/// so a failed test cannot wedge the drain).
fn long_spec(text: &str, seed: u64) -> JobSpec {
    JobSpec {
        instance_text: text.to_string(),
        variant: "sequential".to_string(),
        max_evaluations: u64::MAX / 2,
        neighborhood_size: 40,
        seed,
        deadline_ms: Some(30_000),
        ..JobSpec::default()
    }
}

fn start(workers: usize, queue: usize) -> Server {
    Server::start(ServerConfig {
        workers,
        queue_capacity: queue,
        drain_timeout: Duration::from_secs(60),
        ..ServerConfig::default()
    })
    .expect("start daemon")
}

#[test]
fn eight_concurrent_submissions_all_complete_with_valid_fronts() {
    let server = start(4, 16);
    let addr = server.local_addr();
    let text = Arc::new(instance_text(12, 3));
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let text = Arc::clone(&text);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let job = client
                    .submit(quick_spec(&text, i))
                    .expect("submit")
                    .expect("admitted");
                let result = client
                    .wait_result(job, Duration::from_secs(60))
                    .expect("result");
                (job, result)
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let mut ids: Vec<u64> = results.iter().map(|(job, _)| *job).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 8, "every submission got a distinct job id");
    for (job, result) in &results {
        assert!(!result.truncated, "job {job} should run to budget");
        assert_eq!(result.evaluations, 4_000);
        assert!(
            !result.front.is_empty(),
            "job {job} returned an empty front"
        );
        for point in &result.front {
            assert!(point.objectives.iter().all(|x| x.is_finite()));
            assert!(!point.routes.is_empty());
        }
    }
    let prom = server.prometheus();
    assert!(
        prom.contains("tsmo_jobs_admitted_total 8"),
        "admission counter wrong:\n{prom}"
    );
    assert!(prom.contains("tsmo_jobs_completed_total 8"));
    server.shutdown();
}

#[test]
fn deadlines_truncate_and_are_counted() {
    let server = start(1, 8);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let text = instance_text(12, 4);
    let spec = JobSpec {
        deadline_ms: Some(60),
        ..long_spec(&text, 9)
    };
    let job = client.submit(spec).unwrap().unwrap();
    let result = client.wait_result(job, Duration::from_secs(30)).unwrap();
    assert!(result.truncated);
    assert_eq!(result.stop_cause.as_deref(), Some("deadline_exceeded"));
    assert!(
        result.iterations > 0,
        "the run should get some iterations in before the 60ms deadline"
    );
    let prom = client.metrics().unwrap();
    assert!(
        prom.contains("tsmo_jobs_deadline_exceeded_total 1"),
        "deadline counter missing:\n{prom}"
    );
    server.shutdown();
}

#[test]
fn cancel_truncates_a_running_job_to_a_valid_result() {
    let server = start(1, 8);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let text = instance_text(12, 5);
    let job = client.submit(long_spec(&text, 1)).unwrap().unwrap();
    // Wait until it is actually on the worker, then cancel mid-run.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while client.status(job).unwrap() != "running" {
        assert!(std::time::Instant::now() < deadline, "job never started");
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(30));
    client.cancel(job).unwrap();
    let result = client.wait_result(job, Duration::from_secs(30)).unwrap();
    assert!(result.truncated);
    assert_eq!(result.stop_cause.as_deref(), Some("cancelled"));
    assert!(result.iterations > 0, "cancel mid-run keeps best-so-far");
    assert!(!result.front.is_empty());
    let prom = client.metrics().unwrap();
    assert!(prom.contains("tsmo_jobs_cancelled_total 1"));
    server.shutdown();
}

#[test]
fn cancelling_a_queued_job_still_yields_a_terminal_result() {
    let server = start(1, 8);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let text = instance_text(10, 6);
    let blocker = client.submit(long_spec(&text, 1)).unwrap().unwrap();
    let queued = client.submit(long_spec(&text, 2)).unwrap().unwrap();
    client.cancel(queued).unwrap();
    client.cancel(blocker).unwrap();
    let result = client.wait_result(queued, Duration::from_secs(30)).unwrap();
    assert!(result.truncated);
    assert_eq!(result.stop_cause.as_deref(), Some("cancelled"));
    server.shutdown();
}

#[test]
fn backpressure_rejects_then_recovers_after_drain() {
    let server = start(1, 2);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let text = instance_text(10, 7);
    // Occupy the single worker...
    let running = client.submit(long_spec(&text, 1)).unwrap().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while client.status(running).unwrap() != "running" {
        assert!(std::time::Instant::now() < deadline, "job never started");
        std::thread::sleep(Duration::from_millis(2));
    }
    // ...fill the queue...
    let queued_a = client.submit(long_spec(&text, 2)).unwrap().unwrap();
    let queued_b = client.submit(long_spec(&text, 3)).unwrap().unwrap();
    // ...and the next submission bounces with explicit backpressure.
    match client.submit(long_spec(&text, 4)).unwrap() {
        Err(capacity) => assert_eq!(capacity, 2),
        Ok(job) => panic!("expected QueueFull, got admission as job {job}"),
    }
    let prom = client.metrics().unwrap();
    assert!(
        prom.contains("tsmo_jobs_rejected_total 1"),
        "rejection counter missing:\n{prom}"
    );
    // Drain: cancel everything, wait for terminal states.
    for job in [running, queued_a, queued_b] {
        client.cancel(job).unwrap();
        client.wait_result(job, Duration::from_secs(30)).unwrap();
    }
    // Recovery: the queue has space again.
    let after = client
        .submit(quick_spec(&text, 5))
        .unwrap()
        .expect("submission after drain must be admitted");
    client.wait_result(after, Duration::from_secs(60)).unwrap();
    let (status, queued, _, _) = client.health().unwrap();
    assert_eq!(status, "ok");
    assert_eq!(queued, 0);
    server.shutdown();
}

#[test]
fn identical_instances_share_one_cached_parse() {
    let server = start(2, 8);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let text = instance_text(12, 8);
    let other = instance_text(12, 9);
    let a = client.submit(quick_spec(&text, 1)).unwrap().unwrap();
    let b = client.submit(quick_spec(&text, 2)).unwrap().unwrap();
    let c = client.submit(quick_spec(&other, 3)).unwrap().unwrap();
    for job in [a, b, c] {
        client.wait_result(job, Duration::from_secs(60)).unwrap();
    }
    assert_eq!(
        server.cached_instances(),
        2,
        "two distinct texts, three submissions"
    );
    let prom = client.metrics().unwrap();
    assert!(prom.contains("tsmo_instance_cache_hits_total 1"), "{prom}");
    assert!(
        prom.contains("tsmo_instance_cache_misses_total 2"),
        "{prom}"
    );
    server.shutdown();
}

#[test]
fn http_healthz_and_metrics_share_the_wire_port() {
    let server = start(1, 4);
    let addr = server.local_addr();
    let http_get = |path: &str| -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        body
    };
    let health = http_get("/healthz");
    assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    let metrics = http_get("/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
    assert!(metrics.contains("tsmo_queue_depth"), "{metrics}");
    // Prometheus scrapers key on the exposition-format content type.
    assert!(
        metrics.contains("Content-Type: text/plain; version=0.0.4"),
        "{metrics}"
    );
    let missing = http_get("/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
    server.shutdown();
}

/// tsmo-trace over the service: a `record_events` job can be tailed live
/// over the wire — span and timeline events stream as JSON lines until
/// the job is terminal — and the job's span profile lands in the
/// daemon's metrics.
#[test]
fn tail_streams_a_recorded_jobs_span_events() {
    let server = start(1, 4);
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let text = instance_text(10, 4);
    let spec = JobSpec {
        record_events: true,
        ..quick_spec(&text, 4)
    };
    let job = client.submit(spec).unwrap().unwrap();

    // Tail on a second connection while the job runs on the first.
    let mut tailer = Client::connect(addr).unwrap();
    let mut lines = Vec::new();
    let events = tailer
        .tail(job, |line| lines.push(line.to_string()))
        .unwrap();
    assert_eq!(events as usize, lines.len());
    assert!(!lines.is_empty(), "tail streamed nothing");
    assert!(
        lines.iter().any(|l| l.contains("\"type\":\"span_enter\"")),
        "no span events in the tail"
    );
    // The tail drained a terminal job, so the result is ready.
    let result = client.result(job).unwrap();
    assert!(!result.front.is_empty());
    // The job's span profile folded into the daemon's shared metrics.
    let prom = client.metrics().unwrap();
    assert!(
        prom.contains("tsmo_span_seconds_total{span=\"evaluate\"}"),
        "{prom}"
    );

    // A job submitted without record_events has nothing to tail.
    let plain = client.submit(quick_spec(&text, 5)).unwrap().unwrap();
    let err = tailer.tail(plain, |_| {}).unwrap_err();
    assert!(err.to_string().contains("record"), "{err}");
    server.shutdown();
}

#[test]
fn wire_shutdown_drains_then_stops() {
    let mut server = start(2, 8);
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let text = instance_text(10, 10);
    let a = client.submit(quick_spec(&text, 1)).unwrap().unwrap();
    let b = client.submit(quick_spec(&text, 2)).unwrap().unwrap();
    let completed = client.shutdown().expect("shutdown response after drain");
    assert!(
        completed >= 2,
        "both admitted jobs finished before the daemon stopped (got {completed})"
    );
    // Results of drained jobs are still fetchable on a new connection
    // only if the daemon were alive — it is not: every thread has exited.
    server.wait();
    // The audit trail recorded the full lifecycle.
    let events = server.events_jsonl();
    let parsed = tsmo_obs::parse_events_jsonl(&events).expect("valid JSONL audit trail");
    let completed_events = parsed
        .iter()
        .filter(|e| matches!(e.event, tsmo_obs::SearchEvent::JobCompleted { .. }))
        .count();
    assert_eq!(completed_events, 2, "one JobCompleted per job: {events}");
    assert!(events.contains(&format!("\"type\":\"job_admitted\",\"job\":{a}")));
    assert!(events.contains(&format!("\"type\":\"job_admitted\",\"job\":{b}")));
    // New submissions are refused (connection refused or error response).
    if let Ok(mut late) = Client::connect(addr) {
        assert!(late.submit(quick_spec(&text, 3)).is_err());
    }
}

#[test]
fn parallel_variants_run_through_the_service() {
    let server = start(2, 8);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let text = instance_text(12, 11);
    for (variant, processors) in [
        ("synchronous", 3),
        ("asynchronous", 3),
        ("collaborative", 2),
    ] {
        let spec = JobSpec {
            variant: variant.to_string(),
            processors,
            ..quick_spec(&text, 21)
        };
        let job = client.submit(spec).unwrap().unwrap();
        let result = client.wait_result(job, Duration::from_secs(120)).unwrap();
        assert!(!result.front.is_empty(), "{variant} returned nothing");
    }
    server.shutdown();
}

#[test]
fn bad_submissions_are_rejected_with_errors() {
    let server = start(1, 4);
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Unknown variant.
    let bad_variant = JobSpec {
        variant: "simulated-annealing".to_string(),
        ..quick_spec(&instance_text(10, 12), 1)
    };
    assert!(client.submit(bad_variant).is_err());
    // Unparsable instance.
    assert!(client
        .submit(quick_spec("this is not an instance", 1))
        .is_err());
    // Unknown job ids.
    assert!(client.status(404).is_err());
    assert!(client.cancel(404).is_err());
    assert!(client.result(404).is_err());
    // Malformed frame payload gets an error response, not a hang.
    match client.request(&Request::Health).unwrap() {
        Response::Health { status, .. } => assert_eq!(status, "ok"),
        other => panic!("unexpected {other:?}"),
    }
    server.shutdown();
}

#[test]
fn dynamic_jobs_run_every_epoch_and_warm_start_between_them() {
    let server = start(1, 4);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let text = instance_text(15, 9);
    let spec = JobSpec {
        max_evaluations: 1_500,
        ..quick_spec(&text, 4)
    };
    let dynamic = DynamicParams {
        script_seed: 31,
        epochs: 3,
        mutations_per_epoch: 2,
        warm: true,
    };
    let job = client
        .submit_dynamic(spec, dynamic)
        .expect("submit")
        .expect("admitted");
    let result = client.wait_result(job, Duration::from_secs(120)).unwrap();
    assert_eq!(result.epochs.len(), 3, "one summary per epoch");
    assert_eq!(
        result.evaluations,
        result.epochs.iter().map(|e| e.evaluations).sum::<u64>(),
        "totals are the epoch sums"
    );
    assert!(!result.front.is_empty(), "final epoch front comes back");
    assert_eq!(result.epochs[0].epoch, 0);
    assert_eq!(result.epochs[0].mutations, 0, "epoch 0 is the base");
    for e in &result.epochs[1..] {
        assert!(e.mutations > 0, "epoch {} applied mutations", e.epoch);
        assert!(e.warm_seeds > 0, "epoch {} was warm-started", e.epoch);
        assert!(e.best_distance.is_finite());
    }
    server.shutdown();
}

#[test]
fn a_previous_front_warm_starts_the_next_dynamic_job() {
    let server = start(1, 4);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let text = instance_text(12, 5);
    // A plain job deposits its front in the daemon's solution pool...
    let plain = client.submit(quick_spec(&text, 2)).unwrap().unwrap();
    client.wait_result(plain, Duration::from_secs(60)).unwrap();
    // ...which the dynamic job's *first* epoch then warm-starts from.
    let spec = JobSpec {
        max_evaluations: 1_000,
        ..quick_spec(&text, 3)
    };
    let dynamic = DynamicParams {
        script_seed: 7,
        epochs: 2,
        mutations_per_epoch: 1,
        warm: true,
    };
    let job = client.submit_dynamic(spec, dynamic).unwrap().unwrap();
    let result = client.wait_result(job, Duration::from_secs(120)).unwrap();
    assert!(
        result.epochs[0].warm_seeds > 0,
        "epoch 0 reused the plain job's pooled front"
    );
    server.shutdown();
}

#[test]
fn cold_dynamic_jobs_never_warm_start_and_bad_epochs_are_rejected() {
    let server = start(1, 4);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let text = instance_text(12, 6);
    let spec = JobSpec {
        max_evaluations: 1_000,
        ..quick_spec(&text, 8)
    };
    let dynamic = DynamicParams {
        script_seed: 5,
        epochs: 2,
        mutations_per_epoch: 1,
        warm: false,
    };
    let job = client
        .submit_dynamic(spec.clone(), dynamic)
        .unwrap()
        .unwrap();
    let result = client.wait_result(job, Duration::from_secs(120)).unwrap();
    assert!(result.epochs.iter().all(|e| e.warm_seeds == 0));
    // Zero epochs is a request error, not a failed job.
    let zero = DynamicParams {
        epochs: 0,
        ..DynamicParams::default()
    };
    assert!(client.submit_dynamic(spec, zero).is_err());
    server.shutdown();
}

#[test]
fn portfolio_jobs_race_contenders_and_return_a_merged_front() {
    let server = start(1, 4);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let text = instance_text(15, 11);
    let spec = JobSpec {
        max_evaluations: 4_500,
        ..quick_spec(&text, 21)
    };
    let portfolio = PortfolioParams {
        algos: vec![
            "tsmo-seq".to_string(),
            "nsga2".to_string(),
            "spea2".to_string(),
        ],
        rounds: 3,
        retire_after: 0,
        ..PortfolioParams::default()
    };
    let job = client
        .submit_portfolio(spec, portfolio)
        .expect("submit")
        .expect("admitted");
    let result = client.wait_result(job, Duration::from_secs(120)).unwrap();
    assert_eq!(result.rounds.len(), 3, "one summary per round");
    assert_eq!(
        result.evaluations,
        result.rounds.iter().map(|r| r.spent).sum::<u64>(),
        "totals are the round sums"
    );
    assert_eq!(result.evaluations, 4_500, "the race spends the full budget");
    assert!(!result.front.is_empty(), "the merged front comes back");
    // The merged front is mutually non-dominated.
    let vectors: Vec<Vec<f64>> = result.front.iter().map(|p| p.objectives.to_vec()).collect();
    assert_eq!(
        pareto::non_dominated_indices(&vectors).len(),
        vectors.len(),
        "merged front has a dominated point"
    );
    for round in &result.rounds {
        assert_eq!(
            round.spent, round.allocated,
            "uncancelled rounds spend exactly"
        );
        assert!(!round.winner_algo.is_empty());
    }
    server.shutdown();
}

#[test]
fn bad_portfolio_submissions_are_rejected_at_the_wire() {
    let server = start(1, 4);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let text = instance_text(10, 2);
    let spec = quick_spec(&text, 1);
    let unknown = PortfolioParams {
        algos: vec!["simulated-annealing".to_string()],
        ..PortfolioParams::default()
    };
    assert!(client.submit_portfolio(spec.clone(), unknown).is_err());
    let empty = PortfolioParams {
        algos: Vec::new(),
        ..PortfolioParams::default()
    };
    assert!(client.submit_portfolio(spec.clone(), empty).is_err());
    let zero_rounds = PortfolioParams {
        rounds: 0,
        ..PortfolioParams::default()
    };
    assert!(client.submit_portfolio(spec, zero_rounds).is_err());
    server.shutdown();
}

#[test]
fn the_cache_byte_budget_evicts_old_instances() {
    let text_a = instance_text(12, 1);
    let text_b = instance_text(12, 2);
    // Fits one instance text (plus its pool), never two.
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 4,
        drain_timeout: Duration::from_secs(60),
        cache_budget: Some(text_a.len() * 2),
        ..ServerConfig::default()
    })
    .expect("start daemon");
    let mut client = Client::connect(server.local_addr()).unwrap();
    let a = client.submit(quick_spec(&text_a, 1)).unwrap().unwrap();
    client.wait_result(a, Duration::from_secs(60)).unwrap();
    let b = client.submit(quick_spec(&text_b, 2)).unwrap().unwrap();
    client.wait_result(b, Duration::from_secs(60)).unwrap();
    assert!(
        server.cached_instances() <= 2,
        "the byte budget keeps the cache bounded"
    );
    // The evicted instance readmits cleanly.
    let again = client.submit(quick_spec(&text_a, 3)).unwrap().unwrap();
    let result = client.wait_result(again, Duration::from_secs(60)).unwrap();
    assert!(!result.front.is_empty());
    server.shutdown();
}

#[test]
fn metrics_json_round_trips_to_the_prometheus_exposition() {
    let server = start(1, 4);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let text = instance_text(12, 7);
    let job = client.submit(quick_spec(&text, 7)).unwrap().unwrap();
    client.wait_result(job, Duration::from_secs(60)).unwrap();

    // With no running jobs the registry is quiescent, so the JSON
    // snapshot and the prometheus scrape observe the same state: the
    // parsed registry must re-render to the exact exposition.
    let registry =
        tsmo_obs::MetricsRegistry::from_json(&client.metrics_json().unwrap()).expect("parse back");
    let prom = client.metrics().unwrap();
    assert_eq!(
        registry.to_prometheus(),
        prom,
        "JSON registry must round-trip to the prometheus exposition"
    );
    // And the mergeable form carries real search metrics, not a stub.
    use tsmo_obs::metrics::names;
    assert!(registry.counter(names::EVALUATIONS) > 0);
    assert_eq!(registry.counter(names::JOBS_COMPLETED), 1);
    assert!(
        registry.counter(&names::operator_counter(
            names::OPERATOR_PROPOSED,
            "relocate"
        )) > 0,
        "operator attribution missing from the JSON registry"
    );
    server.shutdown();
}
