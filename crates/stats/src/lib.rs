//! Statistics for the experiment harness: descriptive summaries, Student-t
//! significance tests, and speedup, matching what the paper reports.
//!
//! Tables I–IV of the paper give `mean ± std` per cell, a speedup column
//! (`T_seq / T_par` of mean runtimes), and the text reports pairwise t-test
//! p-values ("the p-values range between 0.1033 and 0.0318 …"). The same
//! quantities are computed here, with the Student-t CDF implemented via the
//! regularized incomplete beta function (continued-fraction expansion) so
//! the crate needs no external dependencies.
//!
//! # Example
//!
//! ```
//! use runstats::{welch_t_test, speedup_percent, Summary};
//!
//! let fast = [1.0, 1.1, 0.9, 1.05];
//! let slow = [2.0, 2.2, 1.9, 2.05];
//! let test = welch_t_test(&fast, &slow);
//! assert!(test.significant(0.05));
//!
//! let s = Summary::of(&fast);
//! assert_eq!(s.n, 4);
//!
//! // The paper's speedup convention: (T_seq / T_par - 1) * 100%.
//! assert!((speedup_percent(2226.33, 1105.77) - 101.34).abs() < 0.01);
//! ```

mod special;
mod ttest;

pub use special::{ln_gamma, regularized_incomplete_beta, student_t_cdf};
pub use ttest::{paired_t_test, welch_t_test, TTestResult};

/// Descriptive summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator); 0 for n < 2.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "cannot summarize an empty sample");
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Formats as the paper's `mean±std` cell.
    pub fn cell(&self) -> String {
        format!("{:.2}±{:.2}", self.mean, self.std_dev)
    }
}

/// The paper's speedup: mean sequential runtime over mean parallel runtime.
///
/// Expressed as the paper prints it — a *percentage improvement* (e.g. the
/// async variant's `101.34%` means it ran in just under half the sequential
/// time). Negative values mean a slowdown, as for the collaborative TS.
///
/// # Panics
/// Panics if `parallel_mean <= 0`.
pub fn speedup_percent(sequential_mean: f64, parallel_mean: f64) -> f64 {
    assert!(parallel_mean > 0.0, "parallel runtime must be positive");
    (sequential_mean / parallel_mean - 1.0) * 100.0
}

/// Plain speedup ratio `T_s / T_p`.
pub fn speedup_ratio(sequential_mean: f64, parallel_mean: f64) -> f64 {
    assert!(parallel_mean > 0.0, "parallel runtime must be positive");
    sequential_mean / parallel_mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev with n-1: sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_single_observation() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.mean, 3.5);
    }

    #[test]
    #[should_panic]
    fn summary_empty_panics() {
        Summary::of(&[]);
    }

    #[test]
    fn cell_formatting() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.cell(), "2.00±1.00");
    }

    #[test]
    fn speedup_matches_paper_convention() {
        // Sequential 2226.33s vs async 1105.77s => ~101.34% (Table I).
        let s = speedup_percent(2226.33, 1105.77);
        assert!((s - 101.34).abs() < 0.01, "{s}");
        // Collaborative slower than sequential => negative.
        assert!(speedup_percent(2226.33, 2626.53) < 0.0);
        assert!((speedup_ratio(100.0, 50.0) - 2.0).abs() < 1e-12);
    }
}
