//! Special functions needed for the Student-t distribution.

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
///
/// Accurate to ~15 significant digits for positive arguments, which is all
/// the t-tests need.
///
/// # Panics
/// Panics for non-positive arguments.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    // Lanczos coefficients (g = 7).
    const COEFFS: [f64; 8] = [
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy near zero.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + i as f64 + 1.0);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function `I_x(a, b)`, computed with the
/// Lentz continued-fraction algorithm (Numerical Recipes §6.4).
///
/// # Panics
/// Panics if `x` is outside `[0, 1]` or `a`/`b` are non-positive.
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1]");
    assert!(a > 0.0 && b > 0.0, "a and b must be positive");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry relation to stay in the rapidly converging region.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-16;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of the Student-t distribution with `df` degrees of freedom.
///
/// `P(T ≤ t)` via the incomplete beta:
/// `I_{df/(df+t²)}(df/2, 1/2)` gives the two-sided tail mass.
///
/// # Panics
/// Panics if `df <= 0`.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if t == 0.0 {
        return 0.5;
    }
    let x = df / (df + t * t);
    let tail = 0.5 * regularized_incomplete_beta(df / 2.0, 0.5, x);
    if t > 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(1/2) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x·Γ(x).
        for x in [0.3, 1.7, 4.2, 9.9] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-10, "x = {x}");
        }
    }

    #[test]
    fn incomplete_beta_boundaries_and_symmetry() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a).
        for (a, b, x) in [(2.0, 3.0, 0.4), (0.5, 0.5, 0.7), (5.0, 1.5, 0.2)] {
            let lhs = regularized_incomplete_beta(a, b, x);
            let rhs = 1.0 - regularized_incomplete_beta(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-12);
        }
    }

    #[test]
    fn incomplete_beta_uniform_case() {
        // I_x(1,1) = x.
        for x in [0.1, 0.35, 0.8] {
            assert!((regularized_incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn incomplete_beta_closed_form() {
        // I_x(1,b) = 1 - (1-x)^b ; I_x(a,1) = x^a.
        let x: f64 = 0.3;
        assert!(
            (regularized_incomplete_beta(1.0, 4.0, x) - (1.0 - (1.0 - x).powi(4))).abs() < 1e-12
        );
        assert!((regularized_incomplete_beta(3.0, 1.0, x) - x.powi(3)).abs() < 1e-12);
    }

    #[test]
    fn t_cdf_symmetry_and_median() {
        assert_eq!(student_t_cdf(0.0, 7.0), 0.5);
        for t in [0.5, 1.3, 2.8] {
            let p = student_t_cdf(t, 9.0);
            let q = student_t_cdf(-t, 9.0);
            assert!((p + q - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn t_cdf_known_quantiles() {
        // Classic t-table values: P(T <= t) for given df.
        // df=1 (Cauchy): CDF(1) = 0.75.
        assert!((student_t_cdf(1.0, 1.0) - 0.75).abs() < 1e-10);
        // df=10: t = 1.812 is the 95th percentile (two-sided 0.10).
        assert!((student_t_cdf(1.8125, 10.0) - 0.95).abs() < 5e-4);
        // df=30: t = 2.042 is the 97.5th percentile.
        assert!((student_t_cdf(2.0423, 30.0) - 0.975).abs() < 5e-4);
        // Large df approaches the normal: CDF(1.96, 1e6) ≈ 0.975.
        assert!((student_t_cdf(1.96, 1e6) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn t_cdf_monotone_in_t() {
        let mut prev = 0.0;
        for i in -40..=40 {
            let t = i as f64 / 4.0;
            let p = student_t_cdf(t, 5.0);
            assert!(p >= prev);
            prev = p;
        }
    }
}
