//! Two-sample and paired Student-t tests.

use crate::special::student_t_cdf;
use crate::Summary;

/// Result of a t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTestResult {
    /// The t statistic.
    pub t: f64,
    /// Degrees of freedom (Welch–Satterthwaite for the two-sample test).
    pub df: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl TTestResult {
    /// Whether the difference is significant at level `alpha` (two-sided).
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Welch's unequal-variance two-sample t-test (two-sided).
///
/// The paper performs "a pairwise t-test … on the results" of independent
/// runs of two algorithms; Welch's variant is the safe default since the
/// variants' runtime/quality variances clearly differ.
///
/// # Panics
/// Panics if either sample has fewer than two observations or both have
/// zero variance and equal means is undefined — for two identical constant
/// samples the test returns `p = 1` instead of panicking.
pub fn welch_t_test(xs: &[f64], ys: &[f64]) -> TTestResult {
    assert!(
        xs.len() >= 2 && ys.len() >= 2,
        "need at least 2 observations per sample"
    );
    let sx = Summary::of(xs);
    let sy = Summary::of(ys);
    let vx = sx.std_dev * sx.std_dev / sx.n as f64;
    let vy = sy.std_dev * sy.std_dev / sy.n as f64;
    let se2 = vx + vy;
    if se2 == 0.0 {
        // Two constant samples.
        let t = if sx.mean == sy.mean {
            0.0
        } else {
            f64::INFINITY
        };
        let p = if sx.mean == sy.mean { 1.0 } else { 0.0 };
        return TTestResult {
            t,
            df: (sx.n + sy.n - 2) as f64,
            p_value: p,
        };
    }
    let t = (sx.mean - sy.mean) / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df = se2 * se2 / (vx * vx / (sx.n as f64 - 1.0) + vy * vy / (sy.n as f64 - 1.0));
    let p = 2.0 * (1.0 - student_t_cdf(t.abs(), df));
    TTestResult {
        t,
        df,
        p_value: p.clamp(0.0, 1.0),
    }
}

/// Paired t-test on matched observations (two-sided).
///
/// # Panics
/// Panics if the slices have different lengths or fewer than two pairs.
pub fn paired_t_test(xs: &[f64], ys: &[f64]) -> TTestResult {
    assert_eq!(xs.len(), ys.len(), "paired test needs matched samples");
    assert!(xs.len() >= 2, "need at least 2 pairs");
    let diffs: Vec<f64> = xs.iter().zip(ys).map(|(x, y)| x - y).collect();
    let s = Summary::of(&diffs);
    let df = (s.n - 1) as f64;
    if s.std_dev == 0.0 {
        let p = if s.mean == 0.0 { 1.0 } else { 0.0 };
        let t = if s.mean == 0.0 { 0.0 } else { f64::INFINITY };
        return TTestResult { t, df, p_value: p };
    }
    let t = s.mean / (s.std_dev / (s.n as f64).sqrt());
    let p = 2.0 * (1.0 - student_t_cdf(t.abs(), df));
    TTestResult {
        t,
        df,
        p_value: p.clamp(0.0, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welch_identical_samples_not_significant() {
        let xs = [5.0, 6.0, 7.0, 8.0];
        let r = welch_t_test(&xs, &xs);
        assert!((r.t).abs() < 1e-12);
        assert!((r.p_value - 1.0).abs() < 1e-12);
        assert!(!r.significant(0.05));
    }

    #[test]
    fn welch_clearly_different_samples_significant() {
        let xs = [1.0, 1.1, 0.9, 1.05, 0.95, 1.02];
        let ys = [5.0, 5.1, 4.9, 5.05, 4.95, 5.02];
        let r = welch_t_test(&xs, &ys);
        assert!(r.p_value < 1e-6);
        assert!(r.significant(0.05));
        assert!(r.t < 0.0, "xs mean below ys mean gives negative t");
    }

    /// Cross-checked against an independent reference implementation
    /// (Welch formulae + incomplete-beta t CDF evaluated in Python):
    /// xs = [20.1, 22.3, 19.8, 21.4, 20.9], ys = [18.2, 19.1, 17.8, 18.9]
    /// -> t = 4.42126, df = 6.62652, p = 0.00351408.
    #[test]
    fn welch_matches_independent_reference() {
        let xs = [20.1, 22.3, 19.8, 21.4, 20.9];
        let ys = [18.2, 19.1, 17.8, 18.9];
        let r = welch_t_test(&xs, &ys);
        assert!((r.t - 4.421256757101671).abs() < 1e-9, "t = {}", r.t);
        assert!((r.df - 6.626519016099435).abs() < 1e-9, "df = {}", r.df);
        assert!(
            (r.p_value - 0.0035140763203130704).abs() < 1e-9,
            "p = {}",
            r.p_value
        );
    }

    #[test]
    fn welch_df_between_bounds() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 2.0, 3.0, 10.0];
        let r = welch_t_test(&xs, &ys);
        // Welch df lies in [min(n1,n2)-1, n1+n2-2].
        assert!(r.df >= 3.0 - 1e-9 && r.df <= 6.0 + 1e-9, "df = {}", r.df);
    }

    #[test]
    fn paired_detects_constant_shift() {
        let xs = [10.0, 12.0, 9.0, 11.0, 10.5];
        let ys: Vec<f64> = xs.iter().map(|x| x + 1.0).collect();
        let r = paired_t_test(&xs, &ys);
        // A perfectly constant shift has zero diff variance => p = 0.
        assert_eq!(r.p_value, 0.0);
    }

    #[test]
    fn paired_noisy_shift() {
        let xs = [10.0, 12.0, 9.0, 11.0, 10.5, 9.5, 11.5, 10.2];
        let ys = [11.1, 12.8, 10.2, 11.9, 11.3, 10.6, 12.2, 11.4];
        let r = paired_t_test(&xs, &ys);
        assert!(r.significant(0.05), "p = {}", r.p_value);
        assert_eq!(r.df, 7.0);
    }

    #[test]
    fn paired_no_difference() {
        let xs = [1.0, 2.0, 3.0];
        let r = paired_t_test(&xs, &xs);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    #[should_panic]
    fn paired_length_mismatch_panics() {
        paired_t_test(&[1.0, 2.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic]
    fn welch_tiny_sample_panics() {
        welch_t_test(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn p_values_monotone_in_separation() {
        let xs = [1.0, 1.2, 0.8, 1.1, 0.9];
        let mut prev_p = 1.0;
        for shift in [0.1, 0.5, 1.0, 2.0] {
            let ys: Vec<f64> = xs.iter().map(|x| x + shift).collect();
            let r = welch_t_test(&xs, &ys);
            assert!(r.p_value <= prev_p + 1e-12, "shift {shift}");
            prev_p = r.p_value;
        }
    }
}
