//! Property-based tests of the statistics crate.

use proptest::prelude::*;
use runstats::{
    ln_gamma, paired_t_test, regularized_incomplete_beta, student_t_cdf, welch_t_test, Summary,
};

fn sample() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, 2..30)
}

proptest! {
    /// p-values live in [0, 1] and are symmetric in the sample order.
    #[test]
    fn welch_p_is_bounded_and_symmetric(xs in sample(), ys in sample()) {
        let ab = welch_t_test(&xs, &ys);
        let ba = welch_t_test(&ys, &xs);
        prop_assert!((0.0..=1.0).contains(&ab.p_value));
        prop_assert!((ab.p_value - ba.p_value).abs() < 1e-9);
        prop_assert!((ab.t + ba.t).abs() < 1e-9, "t statistics must be opposite");
        prop_assert!((ab.df - ba.df).abs() < 1e-9);
    }

    /// The Welch test is invariant under a common affine transform
    /// `x -> a·x + b` with `a > 0`.
    #[test]
    fn welch_is_affine_invariant(
        xs in sample(), ys in sample(),
        a in 0.1f64..10.0, b in -50.0f64..50.0,
    ) {
        let base = welch_t_test(&xs, &ys);
        let tx: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
        let ty: Vec<f64> = ys.iter().map(|y| a * y + b).collect();
        let scaled = welch_t_test(&tx, &ty);
        // Degenerate zero-variance samples short-circuit; skip those.
        prop_assume!(base.t.is_finite() && scaled.t.is_finite());
        prop_assert!((base.t - scaled.t).abs() < 1e-6, "{} vs {}", base.t, scaled.t);
        prop_assert!((base.p_value - scaled.p_value).abs() < 1e-6);
    }

    /// A paired test of a sample against itself never rejects.
    #[test]
    fn paired_self_test_never_rejects(xs in sample()) {
        let r = paired_t_test(&xs, &xs);
        prop_assert_eq!(r.p_value, 1.0);
        prop_assert_eq!(r.t, 0.0);
    }

    /// Summary invariants: min <= mean <= max, std >= 0.
    #[test]
    fn summary_invariants(xs in sample()) {
        let s = Summary::of(&xs);
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert_eq!(s.n, xs.len());
        // Chebyshev-ish sanity: range bounds the std dev for any sample.
        prop_assert!(s.std_dev <= (s.max - s.min) + 1e-9);
    }

    /// The t CDF is a proper CDF: monotone, symmetric, bounded.
    #[test]
    fn t_cdf_is_a_cdf(df in 1.0f64..200.0, t1 in -30.0f64..30.0, t2 in -30.0f64..30.0) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let p_lo = student_t_cdf(lo, df);
        let p_hi = student_t_cdf(hi, df);
        prop_assert!((0.0..=1.0).contains(&p_lo));
        prop_assert!(p_lo <= p_hi + 1e-12);
        prop_assert!((student_t_cdf(t1, df) + student_t_cdf(-t1, df) - 1.0).abs() < 1e-9);
    }

    /// The regularized incomplete beta is monotone in x and hits the
    /// boundary values.
    #[test]
    fn incomplete_beta_monotone(
        a in 0.1f64..20.0, b in 0.1f64..20.0,
        x1 in 0.0f64..1.0, x2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        prop_assert!(
            regularized_incomplete_beta(a, b, lo)
                <= regularized_incomplete_beta(a, b, hi) + 1e-9
        );
        prop_assert_eq!(regularized_incomplete_beta(a, b, 0.0), 0.0);
        prop_assert_eq!(regularized_incomplete_beta(a, b, 1.0), 1.0);
    }

    /// ln Γ satisfies the recurrence on arbitrary positive inputs.
    #[test]
    fn ln_gamma_recurrence(x in 0.05f64..50.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-8, "x = {x}: {lhs} vs {rhs}");
    }
}
