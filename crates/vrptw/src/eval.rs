//! Evaluation of routes and solutions: the three objectives of the paper.

use crate::model::{Instance, SiteId, DEPOT};

/// The multiobjective fitness of a solution, as defined in §II.A:
///
/// * `f1 = distance` — total tour length,
/// * `f2 = vehicles` — number of vehicles actually deployed,
/// * `f3 = tardiness` — summed lateness over all sites (soft time windows),
///   including late arrivals back at the depot.
///
/// All three are minimized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Total travel distance `f1`.
    pub distance: f64,
    /// Number of deployed vehicles `f2`.
    pub vehicles: usize,
    /// Total tardiness `f3`.
    pub tardiness: f64,
}

impl Objectives {
    /// Objective vector for the multiobjective machinery (all minimized).
    #[inline]
    pub fn to_vector(self) -> [f64; 3] {
        [self.distance, self.vehicles as f64, self.tardiness]
    }

    /// Whether the solution respects all time windows, up to `eps` of
    /// accumulated floating-point slack.
    ///
    /// The paper's result tables only admit solutions "that did not violate
    /// the time window and capacity constraints"; this is the time-window
    /// half of that filter.
    #[inline]
    pub fn is_time_feasible(&self, eps: f64) -> bool {
        self.tardiness <= eps
    }

    /// Zero-valued objectives, the identity for the `+` operator.
    pub const ZERO: Objectives = Objectives {
        distance: 0.0,
        vehicles: 0,
        tardiness: 0.0,
    };
}

/// Component-wise sum — used to aggregate per-route evaluations.
impl std::ops::Add for Objectives {
    type Output = Objectives;

    #[inline]
    fn add(self, other: Objectives) -> Objectives {
        Objectives {
            distance: self.distance + other.distance,
            vehicles: self.vehicles + other.vehicles,
            tardiness: self.tardiness + other.tardiness,
        }
    }
}

/// Cached evaluation of a single route (depot → customers → depot).
///
/// Operators re-evaluate only the routes they touch, so the solution-level
/// objectives can be updated by subtracting the old and adding the new
/// `RouteEval` — the incremental-evaluation backbone of the neighborhood
/// search.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RouteEval {
    /// Route length including both depot legs.
    pub distance: f64,
    /// Sum of customer demands on the route.
    pub load: f64,
    /// Summed tardiness at the route's sites and at the depot return.
    pub tardiness: f64,
    /// `max(load - capacity, 0)` — tracked separately because the paper's
    /// operators are designed so it can never become positive; tests assert
    /// exactly that.
    pub capacity_excess: f64,
    /// Total time spent waiting for ready times.
    pub waiting: f64,
    /// Arrival time back at the depot.
    pub finish: f64,
}

impl RouteEval {
    /// The objectives this route contributes to the solution total.
    #[inline]
    pub fn objectives(&self, is_deployed: bool) -> Objectives {
        Objectives {
            distance: self.distance,
            vehicles: usize::from(is_deployed),
            tardiness: self.tardiness,
        }
    }
}

/// Evaluates one route given as the customer visit order (no depot entries).
///
/// An empty route evaluates to all zeros (the vehicle stays at the depot).
///
/// Timing model (Solomon convention, travel time = distance):
/// the vehicle leaves the depot at time 0; at each customer it waits until
/// the ready time if early and accrues `arrival − due` tardiness if late;
/// service takes `c_i`; the final depot return is also checked against the
/// depot's due date (the paper sums `f3` over *all* `L` positions of the
/// permutation, which includes the closing depot).
pub fn evaluate_route(inst: &Instance, route: &[SiteId]) -> RouteEval {
    if route.is_empty() {
        return RouteEval::default();
    }
    let mut eval = RouteEval::default();
    let mut time = inst.depot().ready;
    let mut prev = DEPOT;
    for &cust in route {
        debug_assert_ne!(cust, DEPOT, "routes must not contain the depot");
        let site = inst.site(cust);
        let arrival = time + inst.dist(prev, cust);
        eval.distance += inst.dist(prev, cust);
        eval.load += site.demand;
        if arrival < site.ready {
            eval.waiting += site.ready - arrival;
        }
        if arrival > site.due {
            eval.tardiness += arrival - site.due;
        }
        time = arrival.max(site.ready) + site.service;
        prev = cust;
    }
    let home = time + inst.dist(prev, DEPOT);
    eval.distance += inst.dist(prev, DEPOT);
    if home > inst.depot().due {
        eval.tardiness += home - inst.depot().due;
    }
    eval.finish = home;
    eval.capacity_excess = (eval.load - inst.capacity()).max(0.0);
    eval
}

/// Arrival times at each stop of a route, plus the depot return as the last
/// element. Useful for traces, debugging, and the local feasibility tests.
pub fn arrival_times(inst: &Instance, route: &[SiteId]) -> Vec<f64> {
    let mut out = Vec::with_capacity(route.len() + 1);
    let mut time = inst.depot().ready;
    let mut prev = DEPOT;
    for &cust in route {
        let site = inst.site(cust);
        let arrival = time + inst.dist(prev, cust);
        out.push(arrival);
        time = arrival.max(site.ready) + site.service;
        prev = cust;
    }
    out.push(time + inst.dist(prev, DEPOT));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Instance {
        Instance::tiny()
    }

    #[test]
    fn empty_route_is_free() {
        let inst = tiny();
        let e = evaluate_route(&inst, &[]);
        assert_eq!(e, RouteEval::default());
    }

    #[test]
    fn single_customer_route() {
        let inst = tiny();
        // Customer 1 at (10,0): out 10, back 10, service 1 => finish 21.
        let e = evaluate_route(&inst, &[1]);
        assert_eq!(e.distance, 20.0);
        assert_eq!(e.load, 4.0);
        assert_eq!(e.tardiness, 0.0);
        assert_eq!(e.capacity_excess, 0.0);
        assert_eq!(e.finish, 21.0);
    }

    #[test]
    fn waiting_accrues_when_early() {
        let mut sites = vec![
            Customer {
                x: 0.0,
                y: 0.0,
                demand: 0.0,
                ready: 0.0,
                due: 1000.0,
                service: 0.0,
            },
            Customer {
                x: 10.0,
                y: 0.0,
                demand: 1.0,
                ready: 50.0,
                due: 100.0,
                service: 5.0,
            },
        ];
        sites[1].ready = 50.0;
        let inst = Instance::new("wait", sites, 10.0, 1);
        let e = evaluate_route(&inst, &[1]);
        // Arrive at 10, wait until 50, serve 5, drive 10 back => finish 65.
        assert_eq!(e.waiting, 40.0);
        assert_eq!(e.finish, 65.0);
        assert_eq!(e.tardiness, 0.0);
    }

    #[test]
    fn tardiness_accrues_when_late() {
        let sites = vec![
            Customer {
                x: 0.0,
                y: 0.0,
                demand: 0.0,
                ready: 0.0,
                due: 1000.0,
                service: 0.0,
            },
            Customer {
                x: 10.0,
                y: 0.0,
                demand: 1.0,
                ready: 0.0,
                due: 4.0,
                service: 0.0,
            },
        ];
        let inst = Instance::new("late", sites, 10.0, 1);
        let e = evaluate_route(&inst, &[1]);
        assert_eq!(e.tardiness, 6.0); // arrive at 10, due 4
    }

    #[test]
    fn late_depot_return_counts_as_tardiness() {
        let sites = vec![
            Customer {
                x: 0.0,
                y: 0.0,
                demand: 0.0,
                ready: 0.0,
                due: 15.0,
                service: 0.0,
            },
            Customer {
                x: 10.0,
                y: 0.0,
                demand: 1.0,
                ready: 0.0,
                due: 100.0,
                service: 0.0,
            },
        ];
        let inst = Instance::new("late-home", sites, 10.0, 1);
        let e = evaluate_route(&inst, &[1]);
        assert_eq!(e.tardiness, 5.0); // home at 20, depot due 15
    }

    #[test]
    fn capacity_excess_tracked() {
        let inst = tiny(); // capacity 10, each demand 4
        let e = evaluate_route(&inst, &[1, 2, 3]);
        assert_eq!(e.load, 12.0);
        assert_eq!(e.capacity_excess, 2.0);
    }

    #[test]
    fn arrival_times_match_route_eval() {
        let inst = tiny();
        let times = arrival_times(&inst, &[1, 2]);
        // Depart 0, arrive c1 at 10, serve till 11, drive sqrt(200)≈14.14…
        assert_eq!(times.len(), 3);
        assert_eq!(times[0], 10.0);
        assert!((times[1] - (11.0 + 200f64.sqrt())).abs() < 1e-12);
        let e = evaluate_route(&inst, &[1, 2]);
        assert!((times[2] - e.finish).abs() < 1e-12);
    }

    #[test]
    fn objectives_vector_and_feasibility() {
        let o = Objectives {
            distance: 5.0,
            vehicles: 2,
            tardiness: 0.0,
        };
        assert_eq!(o.to_vector(), [5.0, 2.0, 0.0]);
        assert!(o.is_time_feasible(1e-9));
        let late = Objectives {
            tardiness: 0.1,
            ..o
        };
        assert!(!late.is_time_feasible(1e-9));
        let sum = o + late;
        assert_eq!(sum.vehicles, 4);
        assert_eq!(sum.distance, 10.0);
    }

    use crate::model::Customer;
}
