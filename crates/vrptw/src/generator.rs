//! Seeded generator for extended-Solomon (Gehring–Homberger-like) instances.
//!
//! The paper evaluates on the 400- and 600-city extended Solomon problems of
//! Gehring & Homberger, which were distributed from a university page that
//! no longer exists. This module synthesizes instances with the same
//! structural fingerprint so the experiments remain runnable offline:
//!
//! * classes **C** (clustered customers), **R** (uniformly random) and
//!   **RC** (half/half), each in a *type 1* variant (small time windows,
//!   tight capacity, short horizon) and a *type 2* variant (large windows,
//!   loose capacity, long horizon) — exactly the C1/C2/R1/R2/RC1/RC2 split
//!   the benchmark uses;
//! * sizes from 100 to 1000 customers on the Solomon 100×100 grid with a
//!   central depot;
//! * the paper's vehicle limit scaling: `R = N/4` ("from 25 for the 100
//!   city problems up to 100 for the 400 city problems");
//! * demands in 1..=50, capacities 200 (type 1) / 700 (type 2);
//! * time-window centers drawn so every customer is individually reachable,
//!   widths drawn from class-dependent ranges (small vs. large windows).
//!
//! Generation is fully determined by `(class, size, seed)`.

use crate::model::{Customer, Instance};
use detrand::{DefaultRng, Rng, Xoshiro256StarStar};

/// The six extended-Solomon instance classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstanceClass {
    /// Clustered customers, small time windows, tight capacity.
    C1,
    /// Clustered customers, large time windows, loose capacity.
    C2,
    /// Random customers, small time windows, tight capacity.
    R1,
    /// Random customers, large time windows, loose capacity.
    R2,
    /// Mixed random/clustered, small time windows.
    RC1,
    /// Mixed random/clustered, large time windows.
    RC2,
}

impl InstanceClass {
    /// All six classes, in benchmark order.
    pub const ALL: [InstanceClass; 6] = [
        InstanceClass::C1,
        InstanceClass::C2,
        InstanceClass::R1,
        InstanceClass::R2,
        InstanceClass::RC1,
        InstanceClass::RC2,
    ];

    /// Whether this is a *type 1* class (small windows, tight capacity).
    pub fn is_type1(self) -> bool {
        matches!(
            self,
            InstanceClass::C1 | InstanceClass::R1 | InstanceClass::RC1
        )
    }

    /// Whether customers are placed in clusters (fully for C, half for RC).
    fn cluster_fraction(self) -> f64 {
        match self {
            InstanceClass::C1 | InstanceClass::C2 => 1.0,
            InstanceClass::RC1 | InstanceClass::RC2 => 0.5,
            InstanceClass::R1 | InstanceClass::R2 => 0.0,
        }
    }

    /// Scheduling horizon (depot due date), Solomon base values.
    fn horizon(self) -> f64 {
        match self {
            InstanceClass::C1 => 1236.0,
            InstanceClass::C2 => 3390.0,
            InstanceClass::R1 => 230.0,
            InstanceClass::R2 => 1000.0,
            InstanceClass::RC1 => 240.0,
            InstanceClass::RC2 => 960.0,
        }
    }

    /// Service time at every customer (Solomon: 90 for C classes, 10 else).
    fn service_time(self) -> f64 {
        match self {
            InstanceClass::C1 | InstanceClass::C2 => 90.0,
            _ => 10.0,
        }
    }

    /// Vehicle capacity (200 for type 1, 700 for type 2).
    fn capacity(self) -> f64 {
        if self.is_type1() {
            200.0
        } else {
            700.0
        }
    }

    /// Time-window width range `[lo, hi)` for this class.
    fn window_width(self) -> (f64, f64) {
        match self {
            InstanceClass::C1 => (60.0, 180.0),
            InstanceClass::R1 => (10.0, 30.0),
            InstanceClass::RC1 => (15.0, 60.0),
            InstanceClass::C2 => (160.0, 640.0),
            InstanceClass::R2 => (60.0, 240.0),
            InstanceClass::RC2 => (60.0, 240.0),
        }
    }

    /// Short class label used in generated instance names.
    pub fn label(self) -> &'static str {
        match self {
            InstanceClass::C1 => "C1",
            InstanceClass::C2 => "C2",
            InstanceClass::R1 => "R1",
            InstanceClass::R2 => "R2",
            InstanceClass::RC1 => "RC1",
            InstanceClass::RC2 => "RC2",
        }
    }
}

/// Configuration for the instance generator.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Instance class (layout + window/capacity regime).
    pub class: InstanceClass,
    /// Number of customers `N`.
    pub size: usize,
    /// Generator seed; `(class, size, seed)` fully determines the instance.
    pub seed: u64,
    /// Vehicle limit; defaults to the paper's `N/4` scaling.
    pub max_vehicles: Option<usize>,
    /// Fraction of customers whose windows are unconstrained (Solomon mixes
    /// windowed and unwindowed customers; ~25% unconstrained is typical for
    /// type 2, 0% for type 1).
    pub unconstrained_fraction: Option<f64>,
}

impl GeneratorConfig {
    /// A configuration with benchmark defaults for the given class and size.
    pub fn new(class: InstanceClass, size: usize, seed: u64) -> Self {
        Self {
            class,
            size,
            seed,
            max_vehicles: None,
            unconstrained_fraction: None,
        }
    }

    /// Overrides the vehicle limit.
    pub fn with_max_vehicles(mut self, r: usize) -> Self {
        self.max_vehicles = Some(r);
        self
    }

    /// Generates the instance.
    ///
    /// # Panics
    /// Panics if `size == 0` and debug-asserts that the emitted instance
    /// passes [`Instance::validate`].
    pub fn build(&self) -> Instance {
        assert!(
            self.size > 0,
            "cannot generate an instance with zero customers"
        );
        let mut rng = Xoshiro256StarStar::seed_from_u64(
            self.seed ^ (self.size as u64) << 20 ^ class_salt(self.class),
        );
        let class = self.class;
        let n = self.size;
        let horizon = class.horizon() * horizon_scale(n);
        let service = class.service_time();
        let unconstrained =
            self.unconstrained_fraction
                .unwrap_or(if class.is_type1() { 0.0 } else { 0.25 });

        let depot = Customer {
            x: 50.0,
            y: 50.0,
            demand: 0.0,
            ready: 0.0,
            due: horizon,
            service: 0.0,
        };
        let positions = place_customers(&mut rng, n, class.cluster_fraction());

        let mut sites = Vec::with_capacity(n + 1);
        sites.push(depot);
        let (w_lo, w_hi) = class.window_width();
        for (x, y) in positions {
            let demand = rng.range_u64(1, 51) as f64;
            let dist_depot = ((x - 50.0).powi(2) + (y - 50.0).powi(2)).sqrt();
            // Latest due date that still allows returning home on time.
            let latest_due = horizon - service - dist_depot;
            let (ready, due) = if rng.bernoulli(unconstrained) {
                (0.0, latest_due.max(dist_depot))
            } else {
                let width = rng.range_f64(w_lo, w_hi);
                // Center the window at a reachable service start time.
                let lo = dist_depot;
                let hi = (latest_due).max(lo + 1.0);
                let center = rng.range_f64(lo, hi);
                let ready = (center - width / 2.0).max(0.0);
                let due = (center + width / 2.0).min(latest_due).max(ready);
                (ready, due)
            };
            sites.push(Customer {
                x,
                y,
                demand,
                ready,
                due,
                service,
            });
        }

        // The paper's R = N/4 scaling, raised when a small instance's demand
        // happens to need more fleet capacity (only relevant for the tiny
        // sizes used in tests; benchmark sizes always satisfy N/4).
        let max_vehicles = self.max_vehicles.unwrap_or_else(|| {
            let total: f64 = sites[1..].iter().map(|c| c.demand).sum();
            let demand_min = (total / class.capacity()).ceil() as usize;
            (n / 4).max(2).max(demand_min)
        });
        let inst = Instance::new(
            format!("{}_{}_s{}", class.label(), n, self.seed),
            sites,
            class.capacity(),
            max_vehicles,
        );
        debug_assert!(
            inst.validate().is_empty(),
            "generator emitted invalid instance: {:?}",
            inst.validate()
        );
        inst
    }
}

/// The benchmark keeps the 100×100 geography fixed while growing N, but
/// larger instances need a longer working day for type-1 horizons to admit
/// any feasible fleet-limited solution; Gehring & Homberger likewise widen
/// the horizon with size. We scale with sqrt(N/100), capped at 3×.
fn horizon_scale(n: usize) -> f64 {
    ((n as f64 / 100.0).sqrt()).clamp(1.0, 3.0)
}

fn class_salt(class: InstanceClass) -> u64 {
    match class {
        InstanceClass::C1 => 0xC1,
        InstanceClass::C2 => 0xC2,
        InstanceClass::R1 => 0x51,
        InstanceClass::R2 => 0x52,
        InstanceClass::RC1 => 0x5C1,
        InstanceClass::RC2 => 0x5C2,
    }
}

/// Places customers on the 100×100 grid, `cluster_fraction` of them in
/// Gaussian clusters and the rest uniformly at random.
fn place_customers(rng: &mut DefaultRng, n: usize, cluster_fraction: f64) -> Vec<(f64, f64)> {
    let n_clustered = (n as f64 * cluster_fraction).round() as usize;
    let mut out = Vec::with_capacity(n);
    if n_clustered > 0 {
        // One cluster per ~12 clustered customers, as in the C-class files.
        let n_clusters = (n_clustered / 12).max(3);
        let centers: Vec<(f64, f64)> = (0..n_clusters)
            .map(|_| (rng.range_f64(10.0, 90.0), rng.range_f64(10.0, 90.0)))
            .collect();
        for _ in 0..n_clustered {
            let &(cx, cy) = rng.choose(&centers).expect("clusters exist");
            let x = (cx + rng.normal(0.0, 4.0)).clamp(0.0, 100.0);
            let y = (cy + rng.normal(0.0, 4.0)).clamp(0.0, 100.0);
            out.push((x, y));
        }
    }
    for _ in n_clustered..n {
        out.push((rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)));
    }
    rng.shuffle(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = GeneratorConfig::new(InstanceClass::R1, 100, 7).build();
        let b = GeneratorConfig::new(InstanceClass::R1, 100, 7).build();
        for i in 0..a.n_sites() as u16 {
            assert_eq!(a.site(i), b.site(i));
        }
        let c = GeneratorConfig::new(InstanceClass::R1, 100, 8).build();
        let differs = (0..a.n_sites() as u16).any(|i| a.site(i) != c.site(i));
        assert!(differs, "different seeds should give different instances");
    }

    #[test]
    fn classes_differ_even_with_same_seed() {
        let a = GeneratorConfig::new(InstanceClass::R1, 50, 7).build();
        let b = GeneratorConfig::new(InstanceClass::R2, 50, 7).build();
        let differs = (1..a.n_sites() as u16).any(|i| a.site(i) != b.site(i));
        assert!(differs);
    }

    #[test]
    fn all_classes_validate_at_benchmark_sizes() {
        for class in InstanceClass::ALL {
            for size in [100, 400] {
                let inst = GeneratorConfig::new(class, size, 1).build();
                assert!(inst.validate().is_empty(), "{class:?} size {size}");
                assert_eq!(inst.n_customers(), size);
                assert_eq!(inst.max_vehicles(), size / 4);
            }
        }
    }

    #[test]
    fn paper_vehicle_scaling() {
        let i100 = GeneratorConfig::new(InstanceClass::C1, 100, 1).build();
        assert_eq!(i100.max_vehicles(), 25);
        let i400 = GeneratorConfig::new(InstanceClass::C1, 400, 1).build();
        assert_eq!(i400.max_vehicles(), 100);
    }

    #[test]
    fn type1_windows_are_smaller_than_type2() {
        let avg_width = |class| {
            let inst = GeneratorConfig::new(class, 200, 3).build();
            let mut total = 0.0;
            for c in inst.customers() {
                let s = inst.site(c);
                total += s.due - s.ready;
            }
            total / inst.n_customers() as f64
        };
        let w1 = avg_width(InstanceClass::R1);
        let w2 = avg_width(InstanceClass::R2);
        assert!(
            w1 * 2.0 < w2,
            "R1 avg width {w1} should be much smaller than R2 {w2}"
        );
    }

    #[test]
    fn every_customer_is_individually_reachable() {
        for class in InstanceClass::ALL {
            let inst = GeneratorConfig::new(class, 150, 5).build();
            for c in inst.customers() {
                let s = inst.site(c);
                let d = inst.dist(0, c);
                // Leaving at time 0 and serving customer c alone must allow an
                // on-time depot return: due + service + way home <= horizon.
                assert!(
                    s.due + s.service + d <= inst.horizon() + 1e-9,
                    "{class:?} customer {c} cannot be served alone on time"
                );
                assert!(s.ready <= s.due);
            }
        }
    }

    #[test]
    fn clustered_classes_are_more_clumped_than_random() {
        // Mean nearest-neighbor distance is much smaller under clustering.
        let mean_nn = |class| {
            let inst = GeneratorConfig::new(class, 300, 9).build();
            let mut total = 0.0;
            for i in inst.customers() {
                let mut best = f64::INFINITY;
                for j in inst.customers() {
                    if i != j {
                        best = best.min(inst.dist(i, j));
                    }
                }
                total += best;
            }
            total / inst.n_customers() as f64
        };
        let c = mean_nn(InstanceClass::C1);
        let r = mean_nn(InstanceClass::R1);
        assert!(c < r, "clustered nn {c} should be below random nn {r}");
    }

    #[test]
    fn demands_in_solomon_range() {
        let inst = GeneratorConfig::new(InstanceClass::R2, 400, 2).build();
        for c in inst.customers() {
            let d = inst.site(c).demand;
            assert!((1.0..=50.0).contains(&d));
            assert_eq!(d, d.trunc(), "demands are integral");
        }
    }

    #[test]
    fn fleet_capacity_covers_total_demand() {
        for class in InstanceClass::ALL {
            let inst = GeneratorConfig::new(class, 600, 4).build();
            assert!(inst.total_demand() <= inst.capacity() * inst.max_vehicles() as f64);
        }
    }

    #[test]
    fn max_vehicle_override_respected() {
        let inst = GeneratorConfig::new(InstanceClass::R1, 40, 1)
            .with_max_vehicles(40)
            .build();
        assert_eq!(inst.max_vehicles(), 40);
    }
}
