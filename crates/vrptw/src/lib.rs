//! The Capacitated Vehicle Routing Problem with (soft) Time Windows.
//!
//! This crate is the problem substrate for the TSMO reproduction: the
//! instance model (§II of the paper), the permutation representation
//! (§II.A), the three-objective evaluation (total distance, vehicles
//! deployed, total tardiness), a Solomon-format parser for the classic
//! benchmark files, and a seeded generator that produces extended-Solomon
//! (Gehring–Homberger-like) instances of 100–1000 customers since the
//! original 400/600-city files are no longer publicly hosted.
//!
//! # Problem definition
//!
//! A depot (site `0`) houses up to `R` identical vehicles of capacity `m`.
//! Customers `1..=N` each have a location, a demand `d_i`, a time window
//! `[a_i, b_i]`, and a service time `c_i`. Travel cost and travel time
//! between sites are both the Euclidean distance. A vehicle arriving before
//! `a_i` waits; arriving after `b_i` incurs *tardiness* (soft time windows).
//!
//! The three minimization objectives, exactly as in the paper:
//!
//! * `f1` — total tour length,
//! * `f2` — number of vehicles actually deployed,
//! * `f3` — total tardiness over all sites (including late depot returns).
//!
//! # Example
//!
//! ```
//! use vrptw::{generator::{GeneratorConfig, InstanceClass}, Solution};
//!
//! let inst = GeneratorConfig::new(InstanceClass::R1, 100, 42).build();
//! // One customer per vehicle is always a valid (if poor) solution:
//! let sol = Solution::one_customer_per_route(&inst);
//! let obj = sol.evaluate(&inst);
//! assert!(obj.distance > 0.0);
//! assert_eq!(obj.vehicles, 100);
//! ```

pub mod eval;
pub mod generator;
pub mod model;
pub mod solomon;
pub mod solution;
pub mod stats;
pub mod timing;

pub use eval::{evaluate_route, Objectives, RouteEval};
pub use model::{Customer, Instance, SiteId, DEPOT};
pub use solution::{EvaluatedSolution, Solution};
pub use timing::RouteTiming;
