//! Instance model: sites, customers, travel-cost matrix, fleet parameters.

/// Index of a site. `0` is always the depot; customers are `1..=N`.
pub type SiteId = u16;

/// The depot's site id.
pub const DEPOT: SiteId = 0;

/// One customer (or the depot, which is stored as customer-like record 0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Customer {
    /// X coordinate in the plane.
    pub x: f64,
    /// Y coordinate in the plane.
    pub y: f64,
    /// Demand `d_i`; the depot has demand 0.
    pub demand: f64,
    /// Ready time `a_i` — a vehicle arriving earlier waits.
    pub ready: f64,
    /// Due date `b_i` — arriving later incurs tardiness (soft windows).
    pub due: f64,
    /// Service time `c_i` spent at the site after arrival.
    pub service: f64,
}

/// A CVRPTW instance.
///
/// The travel-cost matrix `T` is precomputed from Euclidean coordinates at
/// construction, matching the paper (§II: "This matrix is computed by
/// calculating the Euclidean distance between the location's x and y
/// coordinates"). Travel *time* equals travel cost, the Solomon convention.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Instance name (e.g. `"R1_4_1"` or a generator tag).
    pub name: String,
    /// Sites: index 0 is the depot, `1..=n_customers` the customers.
    sites: Vec<Customer>,
    /// Flattened `(N+1)×(N+1)` travel-cost matrix, row-major.
    dist: Vec<f64>,
    /// Vehicle capacity `m` (homogeneous fleet).
    capacity: f64,
    /// Maximum number of vehicles `R` available at the depot.
    max_vehicles: usize,
}

impl Instance {
    /// Builds an instance from site records.
    ///
    /// `sites[0]` must be the depot (demand 0). The distance matrix is
    /// computed eagerly — for the paper's largest problems (600 customers)
    /// this is a ~2.9 MB allocation done once per instance.
    ///
    /// # Panics
    /// Panics if there are no customers, if the depot has non-zero demand,
    /// if `capacity <= 0`, or if `max_vehicles == 0`.
    pub fn new(
        name: impl Into<String>,
        sites: Vec<Customer>,
        capacity: f64,
        max_vehicles: usize,
    ) -> Self {
        assert!(
            sites.len() >= 2,
            "an instance needs a depot and at least one customer"
        );
        assert!(
            sites.len() <= SiteId::MAX as usize,
            "site ids are u16; at most {} sites supported",
            SiteId::MAX
        );
        assert_eq!(sites[0].demand, 0.0, "the depot must have zero demand");
        assert!(capacity > 0.0, "vehicle capacity must be positive");
        assert!(max_vehicles > 0, "at least one vehicle is required");
        let n = sites.len();
        let mut dist = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = sites[i].x - sites[j].x;
                let dy = sites[i].y - sites[j].y;
                let d = (dx * dx + dy * dy).sqrt();
                dist[i * n + j] = d;
                dist[j * n + i] = d;
            }
        }
        Self {
            name: name.into(),
            sites,
            dist,
            capacity,
            max_vehicles,
        }
    }

    /// Number of customers `N` (excluding the depot).
    #[inline]
    pub fn n_customers(&self) -> usize {
        self.sites.len() - 1
    }

    /// Number of sites including the depot (`N + 1`).
    #[inline]
    pub fn n_sites(&self) -> usize {
        self.sites.len()
    }

    /// Vehicle capacity `m`.
    #[inline]
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Maximum number of vehicles `R`.
    #[inline]
    pub fn max_vehicles(&self) -> usize {
        self.max_vehicles
    }

    /// The site record for `id` (0 = depot).
    #[inline]
    pub fn site(&self, id: SiteId) -> &Customer {
        &self.sites[id as usize]
    }

    /// The depot record.
    #[inline]
    pub fn depot(&self) -> &Customer {
        &self.sites[0]
    }

    /// Travel cost (= travel time) between two sites.
    #[inline]
    pub fn dist(&self, from: SiteId, to: SiteId) -> f64 {
        self.dist[from as usize * self.sites.len() + to as usize]
    }

    /// Iterator over customer ids `1..=N`.
    pub fn customers(&self) -> impl Iterator<Item = SiteId> + '_ {
        1..self.sites.len() as SiteId
    }

    /// Total demand over all customers.
    pub fn total_demand(&self) -> f64 {
        self.sites[1..].iter().map(|c| c.demand).sum()
    }

    /// The scheduling horizon — the depot's due date.
    #[inline]
    pub fn horizon(&self) -> f64 {
        self.sites[0].due
    }

    /// Sanity-checks invariants that the rest of the workspace relies on.
    ///
    /// Returns a list of human-readable violations (empty = valid). The
    /// generator asserts this is empty for everything it emits, and the
    /// Solomon parser runs it on loaded files.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.depot().ready != 0.0 {
            problems.push("depot ready time should be 0".into());
        }
        for (i, c) in self.sites.iter().enumerate() {
            if c.ready > c.due {
                problems.push(format!("site {i}: ready {} > due {}", c.ready, c.due));
            }
            if c.demand < 0.0 || c.service < 0.0 {
                problems.push(format!("site {i}: negative demand or service time"));
            }
            if i > 0 && c.demand > self.capacity {
                problems.push(format!(
                    "customer {i}: demand {} exceeds vehicle capacity {}",
                    c.demand, self.capacity
                ));
            }
        }
        if self.total_demand() > self.capacity * self.max_vehicles as f64 {
            problems.push("total demand exceeds total fleet capacity".into());
        }
        problems
    }

    /// A tiny handcrafted instance used across the workspace's unit tests:
    /// depot at the origin, four customers on the axes, capacity 10,
    /// three vehicles.
    pub fn tiny() -> Self {
        let depot = Customer {
            x: 0.0,
            y: 0.0,
            demand: 0.0,
            ready: 0.0,
            due: 1000.0,
            service: 0.0,
        };
        let mk = |x: f64, y: f64, demand: f64, ready: f64, due: f64| Customer {
            x,
            y,
            demand,
            ready,
            due,
            service: 1.0,
        };
        Instance::new(
            "tiny",
            vec![
                depot,
                mk(10.0, 0.0, 4.0, 0.0, 100.0),
                mk(0.0, 10.0, 4.0, 0.0, 100.0),
                mk(-10.0, 0.0, 4.0, 0.0, 100.0),
                mk(0.0, -10.0, 4.0, 0.0, 100.0),
            ],
            10.0,
            3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_are_symmetric_euclidean() {
        let inst = Instance::tiny();
        assert_eq!(inst.dist(0, 1), 10.0);
        assert_eq!(inst.dist(1, 0), 10.0);
        let d13 = inst.dist(1, 3);
        assert!((d13 - 20.0).abs() < 1e-12);
        let d12 = inst.dist(1, 2);
        assert!((d12 - 200f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn triangle_inequality_holds_for_euclidean() {
        let inst = Instance::tiny();
        let n = inst.n_sites() as SiteId;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    assert!(inst.dist(i, j) <= inst.dist(i, k) + inst.dist(k, j) + 1e-9);
                }
            }
        }
    }

    #[test]
    fn accessors() {
        let inst = Instance::tiny();
        assert_eq!(inst.n_customers(), 4);
        assert_eq!(inst.n_sites(), 5);
        assert_eq!(inst.capacity(), 10.0);
        assert_eq!(inst.max_vehicles(), 3);
        assert_eq!(inst.total_demand(), 16.0);
        assert_eq!(inst.horizon(), 1000.0);
        assert_eq!(inst.customers().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn tiny_is_valid() {
        assert!(Instance::tiny().validate().is_empty());
    }

    #[test]
    fn validate_flags_bad_windows_and_demand() {
        let mut sites = vec![
            Customer {
                x: 0.0,
                y: 0.0,
                demand: 0.0,
                ready: 0.0,
                due: 100.0,
                service: 0.0,
            },
            Customer {
                x: 1.0,
                y: 0.0,
                demand: 50.0,
                ready: 10.0,
                due: 5.0,
                service: 0.0,
            },
        ];
        let inst = Instance::new("bad", sites.clone(), 10.0, 1);
        let problems = inst.validate();
        assert!(problems.iter().any(|p| p.contains("ready")));
        assert!(problems
            .iter()
            .any(|p| p.contains("exceeds vehicle capacity")));

        sites[1].demand = 8.0;
        sites[1].due = 50.0;
        let inst = Instance::new("ok", sites, 10.0, 1);
        assert!(inst.validate().is_empty());
    }

    #[test]
    #[should_panic]
    fn depot_with_demand_rejected() {
        let sites = vec![
            Customer {
                x: 0.0,
                y: 0.0,
                demand: 1.0,
                ready: 0.0,
                due: 100.0,
                service: 0.0,
            },
            Customer {
                x: 1.0,
                y: 0.0,
                demand: 1.0,
                ready: 0.0,
                due: 100.0,
                service: 0.0,
            },
        ];
        Instance::new("bad", sites, 10.0, 1);
    }

    #[test]
    #[should_panic]
    fn needs_at_least_one_customer() {
        let sites = vec![Customer {
            x: 0.0,
            y: 0.0,
            demand: 0.0,
            ready: 0.0,
            due: 100.0,
            service: 0.0,
        }];
        Instance::new("bad", sites, 10.0, 1);
    }
}
