//! Reader/writer for the Solomon benchmark file format.
//!
//! The classic Solomon and the extended Gehring–Homberger instances are
//! plain-text files of the shape:
//!
//! ```text
//! R101
//!
//! VEHICLE
//! NUMBER     CAPACITY
//!   25         200
//!
//! CUSTOMER
//! CUST NO.  XCOORD.   YCOORD.    DEMAND   READY TIME  DUE DATE   SERVICE TIME
//!     0      35         35          0          0       230          0
//!     1      41         49         10        161       171         10
//!     ...
//! ```
//!
//! The paper's experiments use the 400- and 600-city extended Solomon sets;
//! this parser lets the real files be dropped into the harness when
//! available, while [`crate::generator`] produces statistically equivalent
//! instances otherwise (see DESIGN.md, *Substitutions*).

use crate::model::{Customer, Instance};
use std::fmt::Write as _;
use std::path::Path;

/// Column names of the customer table, indexed like the parsed fields.
const CUSTOMER_FIELDS: [&str; 7] = [
    "CUST NO.",
    "XCOORD.",
    "YCOORD.",
    "DEMAND",
    "READY TIME",
    "DUE DATE",
    "SERVICE TIME",
];

/// Errors produced while parsing a Solomon-format file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number the error was detected on (0 = whole file).
    pub line: usize,
    /// Offending column of the customer/vehicle table, when the error is
    /// attributable to one (e.g. `"DEMAND"`, `"CAPACITY"`).
    pub field: Option<&'static str>,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.field {
            Some(field) => write!(f, "line {}, field {}: {}", self.line, field, self.message),
            None => write!(f, "line {}: {}", self.line, self.message),
        }
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        field: None,
        message: message.into(),
    }
}

fn err_field(line: usize, field: &'static str, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        field: Some(field),
        message: message.into(),
    }
}

/// Parses an instance from Solomon-format text.
///
/// The parser is deliberately tolerant of column widths and blank lines —
/// the historical files are inconsistently formatted — but strict about
/// content: it requires the vehicle block, at least a depot and one
/// customer, and runs [`Instance::validate`] on the result.
pub fn parse(text: &str) -> Result<Instance, ParseError> {
    let mut name = String::new();
    let mut capacity: Option<(usize, f64)> = None;
    let mut sites: Vec<Customer> = Vec::new();
    let mut in_vehicle = false;
    let mut in_customer = false;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let upper = line.to_ascii_uppercase();
        if name.is_empty() && !in_vehicle && !in_customer {
            name = line.to_string();
            continue;
        }
        if upper.starts_with("VEHICLE") {
            in_vehicle = true;
            in_customer = false;
            continue;
        }
        if upper.starts_with("CUSTOMER") {
            in_customer = true;
            in_vehicle = false;
            continue;
        }
        if upper.contains("NUMBER") || upper.contains("CUST NO") {
            continue; // column headers
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if in_vehicle {
            if fields.len() != 2 {
                return Err(err(
                    lineno,
                    format!("expected `NUMBER CAPACITY`, got {line:?}"),
                ));
            }
            let number: usize = fields[0].parse().map_err(|_| {
                err_field(
                    lineno,
                    "NUMBER",
                    format!("bad vehicle count {:?}", fields[0]),
                )
            })?;
            let cap: f64 = fields[1].parse().map_err(|_| {
                err_field(lineno, "CAPACITY", format!("bad capacity {:?}", fields[1]))
            })?;
            capacity = Some((number, cap));
            in_vehicle = false;
        } else if in_customer {
            if fields.len() != 7 {
                return Err(err(
                    lineno,
                    format!("expected 7 customer fields, got {}", fields.len()),
                ));
            }
            let mut nums = [0.0f64; 7];
            for (i, f) in fields.iter().enumerate() {
                nums[i] = f.parse::<f64>().map_err(|_| {
                    err_field(
                        lineno,
                        CUSTOMER_FIELDS[i],
                        format!("non-numeric customer field {f:?}"),
                    )
                })?;
            }
            let expected = sites.len() as f64;
            if nums[0] != expected {
                return Err(err_field(
                    lineno,
                    CUSTOMER_FIELDS[0],
                    format!(
                        "customer numbers must be consecutive; expected {expected}, got {}",
                        nums[0]
                    ),
                ));
            }
            sites.push(Customer {
                x: nums[1],
                y: nums[2],
                demand: nums[3],
                ready: nums[4],
                due: nums[5],
                service: nums[6],
            });
        } else {
            return Err(err(
                lineno,
                format!("unexpected content outside any section: {line:?}"),
            ));
        }
    }

    let (number, cap) = capacity.ok_or_else(|| err(0, "missing VEHICLE section"))?;
    if number == 0 {
        return Err(err(0, "vehicle count must be positive"));
    }
    if sites.len() < 2 {
        return Err(err(0, "need a depot and at least one customer"));
    }
    if name.is_empty() {
        name = "unnamed".to_string();
    }
    let inst = Instance::new(name, sites, cap, number);
    let problems = inst.validate();
    if let Some(p) = problems.first() {
        return Err(err(0, format!("instance fails validation: {p}")));
    }
    Ok(inst)
}

/// Reads and parses a Solomon-format file from disk.
pub fn read_file(path: impl AsRef<Path>) -> Result<Instance, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    Ok(parse(&text)?)
}

/// Serializes an instance back to Solomon format.
///
/// `parse(&write(inst))` reproduces the instance exactly up to floating
/// point formatting (coordinates and times are written with enough digits
/// to round-trip).
pub fn write(inst: &Instance) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}\n", inst.name);
    let _ = writeln!(out, "VEHICLE");
    let _ = writeln!(out, "NUMBER     CAPACITY");
    let _ = writeln!(
        out,
        "  {}         {}\n",
        inst.max_vehicles(),
        fmt_num(inst.capacity())
    );
    let _ = writeln!(out, "CUSTOMER");
    let _ = writeln!(
        out,
        "CUST NO.  XCOORD.   YCOORD.    DEMAND   READY TIME  DUE DATE   SERVICE TIME"
    );
    for i in 0..inst.n_sites() {
        let c = inst.site(i as u16);
        let _ = writeln!(
            out,
            "{:>5} {:>10} {:>10} {:>9} {:>11} {:>10} {:>13}",
            i,
            fmt_num(c.x),
            fmt_num(c.y),
            fmt_num(c.demand),
            fmt_num(c.ready),
            fmt_num(c.due),
            fmt_num(c.service),
        );
    }
    out
}

/// Formats a number without trailing `.0` noise but with full precision for
/// non-integral values.
fn fmt_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
TOY5

VEHICLE
NUMBER     CAPACITY
  3         10

CUSTOMER
CUST NO.  XCOORD.   YCOORD.    DEMAND   READY TIME  DUE DATE   SERVICE TIME
    0          0          0         0           0       1000             0
    1         10          0         4           0        100             1
    2          0         10         4           0        100             1
    3        -10          0         4           0        100             1
    4          0        -10         4           0        100             1
";

    #[test]
    fn parses_sample() {
        let inst = parse(SAMPLE).unwrap();
        assert_eq!(inst.name, "TOY5");
        assert_eq!(inst.n_customers(), 4);
        assert_eq!(inst.capacity(), 10.0);
        assert_eq!(inst.max_vehicles(), 3);
        assert_eq!(inst.site(1).x, 10.0);
        assert_eq!(inst.site(4).y, -10.0);
        assert_eq!(inst.site(2).service, 1.0);
    }

    #[test]
    fn round_trips_through_writer() {
        let inst = parse(SAMPLE).unwrap();
        let text = write(&inst);
        let again = parse(&text).unwrap();
        assert_eq!(again.name, inst.name);
        assert_eq!(again.n_sites(), inst.n_sites());
        assert_eq!(again.capacity(), inst.capacity());
        assert_eq!(again.max_vehicles(), inst.max_vehicles());
        for i in 0..inst.n_sites() as u16 {
            assert_eq!(again.site(i), inst.site(i), "site {i}");
        }
    }

    #[test]
    fn round_trips_generated_instance() {
        use crate::generator::{GeneratorConfig, InstanceClass};
        let inst = GeneratorConfig::new(InstanceClass::C1, 60, 7).build();
        let again = parse(&write(&inst)).unwrap();
        for i in 0..inst.n_sites() as u16 {
            let (a, b) = (inst.site(i), again.site(i));
            assert!((a.x - b.x).abs() < 1e-12);
            assert!((a.ready - b.ready).abs() < 1e-12);
            assert!((a.due - b.due).abs() < 1e-12);
        }
    }

    #[test]
    fn missing_vehicle_section_rejected() {
        let e = parse("NAME\nCUSTOMER\nCUST NO. X Y D R D S\n0 0 0 0 0 10 0\n1 1 1 1 0 10 0\n")
            .unwrap_err();
        assert!(e.message.contains("VEHICLE"), "{e}");
    }

    #[test]
    fn non_consecutive_customer_ids_rejected() {
        let text = SAMPLE.replace("    4          0        -10", "    9          0        -10");
        let e = parse(&text).unwrap_err();
        assert!(e.message.contains("consecutive"), "{e}");
    }

    #[test]
    fn bad_field_count_reports_line() {
        let text = SAMPLE.replace(
            "    2          0         10         4           0        100             1",
            "    2          0         10         4           0",
        );
        let e = parse(&text).unwrap_err();
        assert!(e.line > 0);
        assert!(e.message.contains("7 customer fields"), "{e}");
    }

    #[test]
    fn malformed_fields_report_line_and_field() {
        // Non-numeric demand on customer 2 (line 11 of SAMPLE).
        let text = SAMPLE.replace(
            "    2          0         10         4",
            "    2          0         10       abc",
        );
        let e = parse(&text).unwrap_err();
        assert_eq!(e.line, 11);
        assert_eq!(e.field, Some("DEMAND"));
        assert_eq!(
            e.to_string(),
            format!("line 11, field DEMAND: {}", e.message)
        );

        // Non-numeric vehicle capacity.
        let text = SAMPLE.replace("  3         10", "  3         ten");
        let e = parse(&text).unwrap_err();
        assert_eq!(e.line, 5);
        assert_eq!(e.field, Some("CAPACITY"));

        // Out-of-order customer number carries the CUST NO. field.
        let text = SAMPLE.replace("    4          0        -10", "    9          0        -10");
        let e = parse(&text).unwrap_err();
        assert_eq!(e.field, Some("CUST NO."));
        assert_eq!(e.line, 13);

        // Whole-file errors carry no field.
        let e = parse("NAME\nVEHICLE\nNUMBER CAPACITY\n1 10\n").unwrap_err();
        assert_eq!(e.field, None);
        assert!(e.to_string().starts_with("line 0:"), "{e}");
    }

    #[test]
    fn invalid_instances_rejected_by_validation() {
        // Customer demand exceeding capacity.
        let text = SAMPLE.replace(
            "    1         10          0         4",
            "    1         10          0        40",
        );
        let e = parse(&text).unwrap_err();
        assert!(e.message.contains("validation"), "{e}");
    }

    #[test]
    fn file_io_round_trip() {
        let inst = parse(SAMPLE).unwrap();
        let dir = std::env::temp_dir().join("vrptw-solomon-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy5.txt");
        std::fs::write(&path, write(&inst)).unwrap();
        let again = read_file(&path).unwrap();
        assert_eq!(again.n_sites(), inst.n_sites());
    }
}
