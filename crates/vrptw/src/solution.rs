//! Solution representation: route lists and the paper's giant permutation.
//!
//! The paper encodes a solution as one permutation string of length
//! `L = N + R + 1`: every tour starts and ends at the depot (`0`), tours are
//! concatenated with consecutive zeros merged, and one trailing `0` is
//! appended per unused vehicle (§II.A). Internally we store the equivalent
//! list of non-empty routes, which is what the neighborhood operators
//! manipulate; [`Solution::giant_tour`] and [`Solution::from_giant_tour`]
//! convert losslessly between the two forms.

use crate::eval::{evaluate_route, Objectives, RouteEval};
use crate::model::{Instance, SiteId, DEPOT};

/// A CVRPTW solution: the customer sequences of the deployed vehicles.
///
/// Only non-empty routes are stored; `R − routes.len()` vehicles implicitly
/// stay at the depot. All constructors and mutators preserve the permutation
/// invariant (every customer appears exactly once across all routes).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Solution {
    routes: Vec<Vec<SiteId>>,
}

impl Solution {
    /// Creates a solution from explicit routes.
    ///
    /// # Panics
    /// Panics (in debug builds and via [`Solution::check`] in tests) only
    /// lazily; use [`Solution::check`] to validate eagerly.
    pub fn from_routes(routes: Vec<Vec<SiteId>>) -> Self {
        let routes: Vec<Vec<SiteId>> = routes.into_iter().filter(|r| !r.is_empty()).collect();
        Self { routes }
    }

    /// The trivial solution deploying one vehicle per customer.
    ///
    /// Only valid when `R ≥ N`; callers on tighter instances should use a
    /// construction heuristic instead.
    pub fn one_customer_per_route(inst: &Instance) -> Self {
        Self {
            routes: inst.customers().map(|c| vec![c]).collect(),
        }
    }

    /// The deployed (non-empty) routes.
    #[inline]
    pub fn routes(&self) -> &[Vec<SiteId>] {
        &self.routes
    }

    /// Number of deployed vehicles (`f2`).
    #[inline]
    pub fn n_deployed(&self) -> usize {
        self.routes.len()
    }

    /// Evaluates the three objectives from scratch.
    pub fn evaluate(&self, inst: &Instance) -> Objectives {
        self.routes
            .iter()
            .map(|r| evaluate_route(inst, r).objectives(true))
            .fold(Objectives::ZERO, |a, b| a + b)
    }

    /// Verifies the permutation invariant against an instance.
    ///
    /// Returns human-readable violations; empty means the solution is a
    /// valid member of the search space (feasibility w.r.t. time windows is
    /// a separate, soft question).
    pub fn check(&self, inst: &Instance) -> Vec<String> {
        let mut problems = Vec::new();
        if self.routes.len() > inst.max_vehicles() {
            problems.push(format!(
                "{} routes deployed but only {} vehicles available",
                self.routes.len(),
                inst.max_vehicles()
            ));
        }
        let mut seen = vec![false; inst.n_sites()];
        for (ri, route) in self.routes.iter().enumerate() {
            if route.is_empty() {
                problems.push(format!("route {ri} is empty (must be dropped)"));
            }
            for &c in route {
                if c == DEPOT || (c as usize) >= inst.n_sites() {
                    problems.push(format!("route {ri} contains invalid site {c}"));
                } else if seen[c as usize] {
                    problems.push(format!("customer {c} visited more than once"));
                } else {
                    seen[c as usize] = true;
                }
            }
        }
        for c in inst.customers() {
            if !seen[c as usize] {
                problems.push(format!("customer {c} is not visited"));
            }
        }
        problems
    }

    /// Encodes the paper's permutation string of length `N + R + 1`.
    pub fn giant_tour(&self, inst: &Instance) -> Vec<SiteId> {
        let len = inst.n_customers() + inst.max_vehicles() + 1;
        let mut out = Vec::with_capacity(len);
        out.push(DEPOT);
        for route in &self.routes {
            out.extend_from_slice(route);
            out.push(DEPOT);
        }
        out.resize(len, DEPOT);
        out
    }

    /// Returns the solution resulting from `patch`, without evaluating it.
    ///
    /// Used to materialize chosen neighbors cheaply; the patch must have
    /// been built against this solution's route order.
    ///
    /// # Panics
    /// Panics if a replacement index is out of range.
    pub fn patched(&self, patch: &RoutePatch) -> Solution {
        let mut routes = self.routes.clone();
        for (i, new_route) in &patch.replace {
            routes[*i] = new_route.clone();
        }
        routes.extend(patch.append.iter().cloned());
        Solution::from_routes(routes)
    }

    /// Decodes a permutation string produced by [`Solution::giant_tour`]
    /// (or hand-written in the same format).
    ///
    /// # Errors
    /// Returns a description of the first structural problem: wrong length,
    /// not starting/ending at the depot, too many tours, or not being a
    /// permutation of the customers.
    pub fn from_giant_tour(inst: &Instance, perm: &[SiteId]) -> Result<Self, String> {
        let expected = inst.n_customers() + inst.max_vehicles() + 1;
        if perm.len() != expected {
            return Err(format!(
                "permutation length {} != N+R+1 = {}",
                perm.len(),
                expected
            ));
        }
        if perm.first() != Some(&DEPOT) || perm.last() != Some(&DEPOT) {
            return Err("permutation must start and end at the depot".into());
        }
        let mut routes = Vec::new();
        let mut current: Vec<SiteId> = Vec::new();
        for &s in &perm[1..] {
            if s == DEPOT {
                if !current.is_empty() {
                    routes.push(std::mem::take(&mut current));
                }
            } else {
                current.push(s);
            }
        }
        if !current.is_empty() {
            return Err("permutation does not end at the depot".into());
        }
        let sol = Self { routes };
        let problems = sol.check(inst);
        if let Some(p) = problems.first() {
            return Err(p.clone());
        }
        Ok(sol)
    }
}

/// A batch of route edits, the unit in which neighborhood operators express
/// their effect: replace some existing routes and/or open new ones.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoutePatch {
    /// `(route index, new customer sequence)`; an empty sequence deletes the
    /// route (the vehicle returns to the pool).
    pub replace: Vec<(usize, Vec<SiteId>)>,
    /// Newly opened routes (must respect the vehicle limit at apply time).
    pub append: Vec<Vec<SiteId>>,
}

/// The evaluation of a hypothetical patched solution, computed without
/// materializing it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Preview {
    /// The three paper objectives of the patched solution.
    pub objectives: Objectives,
    /// Worst per-route capacity excess among the *changed* routes; the
    /// operators' local feasibility criterion rejects positive values.
    pub capacity_excess: f64,
}

/// A solution together with cached per-route evaluations and aggregated
/// objectives, enabling O(changed routes) re-evaluation of neighbors.
#[derive(Debug, Clone)]
pub struct EvaluatedSolution {
    solution: Solution,
    route_evals: Vec<RouteEval>,
    objectives: Objectives,
}

impl EvaluatedSolution {
    /// Evaluates all routes of `solution` once and caches the results.
    pub fn new(solution: Solution, inst: &Instance) -> Self {
        let route_evals: Vec<RouteEval> = solution
            .routes
            .iter()
            .map(|r| evaluate_route(inst, r))
            .collect();
        let objectives = route_evals
            .iter()
            .map(|e| e.objectives(true))
            .fold(Objectives::ZERO, |a, b| a + b);
        Self {
            solution,
            route_evals,
            objectives,
        }
    }

    /// The underlying solution.
    #[inline]
    pub fn solution(&self) -> &Solution {
        &self.solution
    }

    /// The cached objectives.
    #[inline]
    pub fn objectives(&self) -> Objectives {
        self.objectives
    }

    /// The cached evaluation of route `i`.
    #[inline]
    pub fn route_eval(&self, i: usize) -> &RouteEval {
        &self.route_evals[i]
    }

    /// The customer sequence of route `i`.
    #[inline]
    pub fn route(&self, i: usize) -> &[SiteId] {
        &self.solution.routes[i]
    }

    /// Number of deployed routes.
    #[inline]
    pub fn n_routes(&self) -> usize {
        self.solution.routes.len()
    }

    /// Evaluates the solution that would result from `patch`, touching only
    /// the changed routes. This is the hot path of neighborhood evaluation.
    ///
    /// # Panics
    /// Panics if a replacement index is out of range or listed twice.
    pub fn preview(&self, inst: &Instance, patch: &RoutePatch) -> Preview {
        let mut objectives = self.objectives;
        let mut capacity_excess = 0.0f64;
        debug_assert!(
            {
                let mut idx: Vec<usize> = patch.replace.iter().map(|(i, _)| *i).collect();
                idx.sort_unstable();
                idx.windows(2).all(|w| w[0] != w[1])
            },
            "a route may be replaced at most once per patch"
        );
        for (i, new_route) in &patch.replace {
            let old = &self.route_evals[*i];
            objectives.distance -= old.distance;
            objectives.tardiness -= old.tardiness;
            objectives.vehicles -= 1; // stored routes are always non-empty
            if !new_route.is_empty() {
                let e = evaluate_route(inst, new_route);
                objectives.distance += e.distance;
                objectives.tardiness += e.tardiness;
                objectives.vehicles += 1;
                capacity_excess = capacity_excess.max(e.capacity_excess);
            }
        }
        for new_route in &patch.append {
            if !new_route.is_empty() {
                let e = evaluate_route(inst, new_route);
                objectives.distance += e.distance;
                objectives.tardiness += e.tardiness;
                objectives.vehicles += 1;
                capacity_excess = capacity_excess.max(e.capacity_excess);
            }
        }
        Preview {
            objectives,
            capacity_excess,
        }
    }

    /// Applies `patch`, re-evaluating the changed routes and dropping any
    /// routes that became empty.
    ///
    /// # Panics
    /// Panics if the patch would exceed the vehicle limit or replaces an
    /// out-of-range route.
    pub fn apply(&mut self, inst: &Instance, patch: RoutePatch) {
        for (i, new_route) in patch.replace {
            self.solution.routes[i] = new_route;
            self.route_evals[i] = evaluate_route(inst, &self.solution.routes[i]);
        }
        for new_route in patch.append {
            if new_route.is_empty() {
                continue;
            }
            self.route_evals.push(evaluate_route(inst, &new_route));
            self.solution.routes.push(new_route);
        }
        // Drop emptied routes, keeping evals aligned.
        let mut i = 0;
        while i < self.solution.routes.len() {
            if self.solution.routes[i].is_empty() {
                self.solution.routes.swap_remove(i);
                self.route_evals.swap_remove(i);
            } else {
                i += 1;
            }
        }
        assert!(
            self.solution.routes.len() <= inst.max_vehicles(),
            "patch exceeded the vehicle limit"
        );
        self.objectives = self
            .route_evals
            .iter()
            .map(|e| e.objectives(true))
            .fold(Objectives::ZERO, |a, b| a + b);
    }

    /// Consumes the wrapper, returning the plain solution.
    pub fn into_solution(self) -> Solution {
        self.solution
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Instance {
        Instance::tiny()
    }

    #[test]
    fn paper_example_encoding() {
        // The paper's example: 4 customers, 5 vehicles, tours [4,2],[3],[1]
        // => P = (0, 4, 2, 0, 3, 0, 1, 0, 0, 0).
        let depot = crate::Customer {
            x: 0.0,
            y: 0.0,
            demand: 0.0,
            ready: 0.0,
            due: 1e4,
            service: 0.0,
        };
        let c = |x: f64| crate::Customer {
            x,
            y: 1.0,
            demand: 1.0,
            ready: 0.0,
            due: 1e4,
            service: 0.0,
        };
        let inst = Instance::new(
            "paper",
            vec![depot, c(1.0), c(2.0), c(3.0), c(4.0)],
            100.0,
            5,
        );
        let sol = Solution::from_routes(vec![vec![4, 2], vec![3], vec![1]]);
        assert_eq!(sol.giant_tour(&inst), vec![0, 4, 2, 0, 3, 0, 1, 0, 0, 0]);
        let round = Solution::from_giant_tour(&inst, &sol.giant_tour(&inst)).unwrap();
        assert_eq!(round, sol);
    }

    #[test]
    fn giant_tour_length_is_always_n_plus_r_plus_1() {
        let inst = tiny();
        for sol in [
            Solution::from_routes(vec![vec![1, 2, 3, 4]]),
            Solution::from_routes(vec![vec![1], vec![2], vec![3, 4]]),
        ] {
            assert_eq!(sol.giant_tour(&inst).len(), 4 + 3 + 1);
        }
    }

    #[test]
    fn from_giant_tour_rejects_garbage() {
        let inst = tiny();
        // Wrong length.
        assert!(Solution::from_giant_tour(&inst, &[0, 1, 2, 3, 4, 0]).is_err());
        // Doesn't start with depot.
        assert!(Solution::from_giant_tour(&inst, &[1, 0, 2, 0, 3, 0, 4, 0]).is_err());
        // Missing customer 4, customer 1 twice.
        assert!(Solution::from_giant_tour(&inst, &[0, 1, 1, 0, 2, 0, 3, 0]).is_err());
        // Valid one for reference: N+R+1 = 8.
        assert!(Solution::from_giant_tour(&inst, &[0, 1, 2, 0, 3, 0, 4, 0]).is_ok());
    }

    #[test]
    fn check_catches_all_violation_kinds() {
        let inst = tiny();
        let missing = Solution::from_routes(vec![vec![1, 2]]);
        assert!(missing
            .check(&inst)
            .iter()
            .any(|p| p.contains("not visited")));
        let duped = Solution::from_routes(vec![vec![1, 2], vec![2, 3, 4]]);
        assert!(duped
            .check(&inst)
            .iter()
            .any(|p| p.contains("more than once")));
        let too_many = Solution::from_routes(vec![vec![1], vec![2], vec![3], vec![4]]);
        assert!(too_many
            .check(&inst)
            .iter()
            .any(|p| p.contains("vehicles available")));
        let ok = Solution::from_routes(vec![vec![1, 2], vec![3, 4]]);
        assert!(ok.check(&inst).is_empty());
    }

    #[test]
    fn evaluate_sums_routes() {
        let inst = tiny();
        let sol = Solution::from_routes(vec![vec![1], vec![2], vec![3]]);
        // This leaves customer 4 unvisited (invalid as a solution), but
        // evaluation is structural: 3 out-and-back routes of length 20.
        let o = sol.evaluate(&inst);
        assert_eq!(o.distance, 60.0);
        assert_eq!(o.vehicles, 3);
        assert_eq!(o.tardiness, 0.0);
    }

    #[test]
    fn preview_matches_full_reevaluation() {
        let inst = tiny();
        let base = Solution::from_routes(vec![vec![1, 2], vec![3, 4]]);
        let ev = EvaluatedSolution::new(base, &inst);
        // Move customer 2 from route 0 to route 1.
        let patch = RoutePatch {
            replace: vec![(0, vec![1]), (1, vec![3, 2, 4])],
            append: vec![],
        };
        let preview = ev.preview(&inst, &patch);
        let target = Solution::from_routes(vec![vec![1], vec![3, 2, 4]]);
        let full = target.evaluate(&inst);
        assert!((preview.objectives.distance - full.distance).abs() < 1e-9);
        assert_eq!(preview.objectives.vehicles, full.vehicles);
        assert!((preview.objectives.tardiness - full.tardiness).abs() < 1e-9);
    }

    #[test]
    fn preview_counts_emptied_and_new_routes() {
        let inst = tiny();
        let ev = EvaluatedSolution::new(Solution::from_routes(vec![vec![1, 2], vec![3, 4]]), &inst);
        // Empty route 0, open a new route with customer 1, keep 2 in route 1.
        let patch = RoutePatch {
            replace: vec![(0, vec![]), (1, vec![3, 4, 2])],
            append: vec![vec![1]],
        };
        let p = ev.preview(&inst, &patch);
        assert_eq!(p.objectives.vehicles, 2);
        let target = Solution::from_routes(vec![vec![3, 4, 2], vec![1]]);
        assert!((p.objectives.distance - target.evaluate(&inst).distance).abs() < 1e-9);
    }

    #[test]
    fn apply_matches_preview_and_purges_empties() {
        let inst = tiny();
        let mut ev =
            EvaluatedSolution::new(Solution::from_routes(vec![vec![1, 2], vec![3, 4]]), &inst);
        let patch = RoutePatch {
            replace: vec![(0, vec![]), (1, vec![3, 4, 2, 1])],
            append: vec![],
        };
        let preview = ev.preview(&inst, &patch);
        ev.apply(&inst, patch);
        assert_eq!(ev.objectives(), preview.objectives);
        assert_eq!(ev.n_routes(), 1);
        assert!(ev.solution().check(&inst).is_empty());
        // Cached evals stay consistent with a fresh evaluation.
        let fresh = EvaluatedSolution::new(ev.solution().clone(), &inst);
        assert!((fresh.objectives().distance - ev.objectives().distance).abs() < 1e-9);
    }

    #[test]
    fn patched_matches_apply() {
        let inst = tiny();
        let base = Solution::from_routes(vec![vec![1, 2], vec![3, 4]]);
        let patch = RoutePatch {
            replace: vec![(0, vec![]), (1, vec![3, 4, 2])],
            append: vec![vec![1]],
        };
        let light = base.patched(&patch);
        let mut heavy = EvaluatedSolution::new(base, &inst);
        heavy.apply(&inst, patch);
        // Same multiset of routes (ordering may differ due to swap_remove).
        let mut a: Vec<_> = light.routes().to_vec();
        let mut b: Vec<_> = heavy.solution().routes().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(light.check(&inst).is_empty());
    }

    #[test]
    fn capacity_excess_reported_in_preview() {
        let inst = tiny(); // capacity 10, demands 4 each
        let ev = EvaluatedSolution::new(Solution::from_routes(vec![vec![1, 2], vec![3, 4]]), &inst);
        let patch = RoutePatch {
            replace: vec![(0, vec![1, 2, 3])],
            append: vec![],
        };
        let p = ev.preview(&inst, &patch);
        assert_eq!(p.capacity_excess, 2.0);
    }
}
