//! Instance statistics: the structural fingerprint the generator mimics.
//!
//! The original Gehring–Homberger files are characterized by their
//! geographic layout (clustered vs. random), time-window regime (small
//! vs. large) and capacity regime. This module quantifies those properties
//! so tests can assert the generator reproduces them and users can inspect
//! how a loaded instance compares to the benchmark classes.

use crate::model::{Instance, DEPOT};

/// Structural statistics of an instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceStats {
    /// Number of customers.
    pub n_customers: usize,
    /// Mean time-window width over the windowed customers.
    pub mean_window_width: f64,
    /// Window width divided by the scheduling horizon (tightness; small
    /// for type-1 classes, large for type-2).
    pub relative_window_width: f64,
    /// Mean distance to the nearest other customer (clustering: low for C
    /// classes, higher for R classes at equal density).
    pub mean_nearest_neighbor: f64,
    /// Mean distance from the depot.
    pub mean_depot_distance: f64,
    /// Total demand over fleet capacity (fleet utilization pressure).
    pub demand_pressure: f64,
    /// Minimum vehicles forced by capacity alone: `⌈Σd / m⌉`.
    pub capacity_lower_bound: usize,
}

/// Computes the statistics of an instance.
///
/// # Panics
/// Panics on an instance with no customers (impossible via [`Instance::new`]).
pub fn instance_stats(inst: &Instance) -> InstanceStats {
    let n = inst.n_customers();
    assert!(n > 0, "instances always have customers");
    let horizon = inst.horizon();
    let mut width_sum = 0.0;
    let mut depot_sum = 0.0;
    let mut nn_sum = 0.0;
    for i in inst.customers() {
        let s = inst.site(i);
        width_sum += s.due - s.ready;
        depot_sum += inst.dist(DEPOT, i);
        let mut best = f64::INFINITY;
        for j in inst.customers() {
            if i != j {
                best = best.min(inst.dist(i, j));
            }
        }
        if best.is_finite() {
            nn_sum += best;
        }
    }
    let mean_window_width = width_sum / n as f64;
    let total_demand = inst.total_demand();
    InstanceStats {
        n_customers: n,
        mean_window_width,
        relative_window_width: mean_window_width / horizon,
        mean_nearest_neighbor: if n > 1 { nn_sum / n as f64 } else { 0.0 },
        mean_depot_distance: depot_sum / n as f64,
        demand_pressure: total_demand / (inst.capacity() * inst.max_vehicles() as f64),
        capacity_lower_bound: (total_demand / inst.capacity()).ceil() as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, InstanceClass};

    #[test]
    fn type1_windows_are_relatively_tighter_than_type2() {
        let t1 = instance_stats(&GeneratorConfig::new(InstanceClass::R1, 150, 3).build());
        let t2 = instance_stats(&GeneratorConfig::new(InstanceClass::R2, 150, 3).build());
        assert!(
            t1.relative_window_width < t2.relative_window_width,
            "{} !< {}",
            t1.relative_window_width,
            t2.relative_window_width
        );
    }

    #[test]
    fn clustered_layouts_have_smaller_nearest_neighbor_distance() {
        let c = instance_stats(&GeneratorConfig::new(InstanceClass::C1, 200, 7).build());
        let r = instance_stats(&GeneratorConfig::new(InstanceClass::R1, 200, 7).build());
        assert!(c.mean_nearest_neighbor < r.mean_nearest_neighbor);
        // RC sits between the two.
        let rc = instance_stats(&GeneratorConfig::new(InstanceClass::RC1, 200, 7).build());
        assert!(c.mean_nearest_neighbor < rc.mean_nearest_neighbor);
        assert!(rc.mean_nearest_neighbor < r.mean_nearest_neighbor);
    }

    #[test]
    fn demand_pressure_below_one_on_generated_instances() {
        for class in InstanceClass::ALL {
            let s = instance_stats(&GeneratorConfig::new(class, 100, 9).build());
            assert!(s.demand_pressure <= 1.0, "{class:?}: {}", s.demand_pressure);
            assert!(s.capacity_lower_bound >= 1);
        }
    }

    #[test]
    fn tiny_instance_stats() {
        let s = instance_stats(&Instance::tiny());
        assert_eq!(s.n_customers, 4);
        assert_eq!(s.mean_window_width, 100.0);
        assert_eq!(s.mean_depot_distance, 10.0);
        // Nearest neighbor for each axis point is the adjacent axis point.
        assert!((s.mean_nearest_neighbor - 200f64.sqrt()).abs() < 1e-9);
        assert_eq!(s.capacity_lower_bound, 2);
    }
}
