//! Route timing analysis: forward service-start times, backward latest
//! feasible arrivals, and O(1) insertion feasibility checks.
//!
//! These are the classic push-forward bookkeeping arrays of time-window
//! routing (Solomon 1987, Savelsbergh 1992): for a *hard-feasible* route,
//! `latest[k]` is the latest arrival time at stop `k` that keeps the rest
//! of the route (and the depot return) on time, so checking whether a
//! customer can be spliced in at a position needs only the two endpoint
//! arcs instead of re-simulating the whole route. The I1 construction
//! heuristic and the local-search descent both build on this.

use crate::model::{Instance, SiteId, DEPOT};

/// Timing arrays for one route (customer sequence, depot-to-depot).
#[derive(Debug, Clone)]
pub struct RouteTiming {
    /// Service start at each stop (`max(arrival, ready)`).
    pub start: Vec<f64>,
    /// Latest feasible arrival per stop; index `len` is the depot return
    /// bound (the depot's due date).
    pub latest: Vec<f64>,
    /// Total demand on the route.
    pub load: f64,
}

impl RouteTiming {
    /// Computes the arrays for `route`.
    pub fn of(inst: &Instance, route: &[SiteId]) -> Self {
        let n = route.len();
        let mut start = vec![0.0; n];
        let mut time = inst.depot().ready;
        let mut prev = DEPOT;
        let mut load = 0.0;
        for (k, &c) in route.iter().enumerate() {
            let s = inst.site(c);
            let arrival = time + inst.dist(prev, c);
            start[k] = arrival.max(s.ready);
            time = start[k] + s.service;
            load += s.demand;
            prev = c;
        }
        let mut latest = vec![0.0; n + 1];
        latest[n] = inst.depot().due;
        for k in (0..n).rev() {
            let c = route[k];
            let s = inst.site(c);
            let next = if k + 1 < n { route[k + 1] } else { DEPOT };
            latest[k] = s.due.min(latest[k + 1] - s.service - inst.dist(c, next));
        }
        Self {
            start,
            latest,
            load,
        }
    }

    /// Whether the route itself is hard-feasible (every arrival within its
    /// window and the depot return on time). Equivalent to — but cheaper
    /// than — checking `evaluate_route(..).tardiness == 0`.
    pub fn is_feasible(&self, inst: &Instance, route: &[SiteId]) -> bool {
        for (k, &c) in route.iter().enumerate() {
            // start[k] > due means the arrival already missed the window
            // (start = max(arrival, ready) and ready <= due always holds
            // on validated instances).
            if self.start[k] > inst.site(c).due {
                return false;
            }
        }
        // Depot return.
        match route.last() {
            Some(&last) => {
                let home =
                    self.start[route.len() - 1] + inst.site(last).service + inst.dist(last, DEPOT);
                home <= inst.depot().due
            }
            None => true,
        }
    }

    /// O(1) check: can `customer` be inserted at `pos` (0..=len) keeping
    /// the route hard-feasible and capacity-respecting?
    ///
    /// Only valid when the arrays describe a hard-feasible route; on an
    /// infeasible route the result is meaningless (callers in the soft-TW
    /// search use the operator-level criterion instead).
    pub fn insertion_feasible(
        &self,
        inst: &Instance,
        route: &[SiteId],
        pos: usize,
        customer: SiteId,
    ) -> bool {
        let su = inst.site(customer);
        if self.load + su.demand > inst.capacity() {
            return false;
        }
        let (i, depart_i) = if pos == 0 {
            (DEPOT, inst.depot().ready)
        } else {
            let i = route[pos - 1];
            (i, self.start[pos - 1] + inst.site(i).service)
        };
        let arr_u = depart_i + inst.dist(i, customer);
        if arr_u > su.due {
            return false;
        }
        let j = if pos < route.len() { route[pos] } else { DEPOT };
        let arr_j = arr_u.max(su.ready) + su.service + inst.dist(customer, j);
        arr_j <= self.latest[pos]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_route;
    use crate::generator::{GeneratorConfig, InstanceClass};
    use detrand::{Rng, Xoshiro256StarStar};

    #[test]
    fn start_times_match_evaluation() {
        let inst = Instance::tiny();
        let t = RouteTiming::of(&inst, &[1, 2]);
        assert_eq!(t.start[0], 10.0);
        assert!((t.start[1] - (11.0 + 200f64.sqrt())).abs() < 1e-12);
        assert_eq!(t.load, 8.0);
    }

    #[test]
    fn latest_is_tight_at_boundaries() {
        let inst = Instance::tiny();
        let t = RouteTiming::of(&inst, &[1]);
        // latest[1] = depot due; latest[0] = min(due_1, 1000 - 1 - 10).
        assert_eq!(t.latest[1], 1000.0);
        assert_eq!(t.latest[0], 100.0);
    }

    #[test]
    fn feasibility_agrees_with_evaluation() {
        let inst = GeneratorConfig::new(InstanceClass::R1, 50, 3).build();
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let mut customers: Vec<SiteId> = inst.customers().collect();
        rng.shuffle(&mut customers);
        for chunk in customers.chunks(5) {
            let t = RouteTiming::of(&inst, chunk);
            let e = evaluate_route(&inst, chunk);
            assert_eq!(
                t.is_feasible(&inst, chunk),
                e.tardiness == 0.0,
                "disagreement on {chunk:?} (tardiness {})",
                e.tardiness
            );
        }
    }

    #[test]
    fn o1_insertion_check_agrees_with_full_simulation() {
        let inst = GeneratorConfig::new(InstanceClass::RC2, 60, 5).build();
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let mut customers: Vec<SiteId> = inst.customers().collect();
        rng.shuffle(&mut customers);
        let (route, rest) = customers.split_at(6);
        // Only meaningful on a feasible base route.
        let t = RouteTiming::of(&inst, route);
        if !t.is_feasible(&inst, route) {
            return; // this seed yields an infeasible base; other tests cover it
        }
        let mut checked = 0;
        for &u in rest.iter().take(20) {
            for pos in 0..=route.len() {
                let fast = t.insertion_feasible(&inst, route, pos, u);
                let mut cand = route.to_vec();
                cand.insert(pos, u);
                let e = evaluate_route(&inst, &cand);
                let slow = e.tardiness == 0.0 && e.load <= inst.capacity();
                assert_eq!(fast, slow, "customer {u} at {pos}");
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn empty_route_is_feasible() {
        let inst = Instance::tiny();
        let t = RouteTiming::of(&inst, &[]);
        assert!(t.is_feasible(&inst, &[]));
        assert_eq!(t.load, 0.0);
        assert_eq!(t.latest, vec![1000.0]);
        // Inserting into an empty route = a new out-and-back tour.
        assert!(t.insertion_feasible(&inst, &[], 0, 1));
    }
}
