//! Property-based tests of the problem substrate: evaluation semantics,
//! generator guarantees, and the Solomon round trip.

use detrand::{Rng, Xoshiro256StarStar};
use proptest::prelude::*;
use vrptw::generator::{GeneratorConfig, InstanceClass};
use vrptw::{evaluate_route, solomon, Instance, SiteId, Solution};

fn class_from(idx: u8) -> InstanceClass {
    InstanceClass::ALL[idx as usize % InstanceClass::ALL.len()]
}

/// A random valid solution for the instance.
fn random_solution(inst: &Instance, seed: u64, k: usize) -> Solution {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut customers: Vec<SiteId> = inst.customers().collect();
    rng.shuffle(&mut customers);
    let k = k.clamp(1, inst.max_vehicles());
    let mut routes = vec![Vec::new(); k];
    for (i, c) in customers.into_iter().enumerate() {
        routes[i % k].push(c);
    }
    Solution::from_routes(routes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Route distance is independent of travel direction (the matrix is
    /// symmetric), while timing-dependent quantities may differ.
    #[test]
    fn route_distance_is_reversal_invariant(
        class_idx in 0u8..6, n in 5usize..40, seed in 0u64..500,
    ) {
        let inst = GeneratorConfig::new(class_from(class_idx), n, seed).build();
        let sol = random_solution(&inst, seed ^ 1, 3);
        for route in sol.routes() {
            let fwd = evaluate_route(&inst, route);
            let mut rev = route.clone();
            rev.reverse();
            let bwd = evaluate_route(&inst, &rev);
            prop_assert!((fwd.distance - bwd.distance).abs() < 1e-9);
            prop_assert!((fwd.load - bwd.load).abs() < 1e-12);
        }
    }

    /// Evaluation outputs are always physically sensible.
    #[test]
    fn evaluation_quantities_are_non_negative(
        class_idx in 0u8..6, n in 5usize..40, seed in 0u64..500, k in 1usize..6,
    ) {
        let inst = GeneratorConfig::new(class_from(class_idx), n, seed).build();
        let sol = random_solution(&inst, seed ^ 2, k);
        for route in sol.routes() {
            let e = evaluate_route(&inst, route);
            prop_assert!(e.distance >= 0.0);
            prop_assert!(e.tardiness >= 0.0);
            prop_assert!(e.waiting >= 0.0);
            prop_assert!(e.load >= 0.0);
            prop_assert!(e.capacity_excess >= 0.0);
            // The route cannot finish before driving its distance.
            prop_assert!(e.finish + 1e-9 >= e.distance);
        }
    }

    /// Splitting a route in two never increases tardiness and never
    /// decreases the vehicle count — the monotone trade the second
    /// objective is about.
    #[test]
    fn splitting_a_route_cannot_hurt_tardiness(
        class_idx in 0u8..6, n in 6usize..30, seed in 0u64..300, cut in 1usize..5,
    ) {
        let inst = GeneratorConfig::new(class_from(class_idx), n, seed).build();
        let sol = random_solution(&inst, seed ^ 3, 2);
        let route = sol.routes()[0].clone();
        prop_assume!(route.len() >= 2);
        let cut = cut.min(route.len() - 1);
        let whole = evaluate_route(&inst, &route);
        let first = evaluate_route(&inst, &route[..cut]);
        let second = evaluate_route(&inst, &route[cut..]);
        prop_assert!(
            first.tardiness + second.tardiness <= whole.tardiness + 1e-9,
            "split tardiness {} + {} should be <= whole {}",
            first.tardiness, second.tardiness, whole.tardiness
        );
    }

    /// Generated instances always pass validation and respect the
    /// documented ranges, for arbitrary sizes and seeds.
    #[test]
    fn generator_output_is_always_valid(
        class_idx in 0u8..6, n in 1usize..120, seed in 0u64..10_000,
    ) {
        let inst = GeneratorConfig::new(class_from(class_idx), n, seed).build();
        prop_assert!(inst.validate().is_empty());
        prop_assert_eq!(inst.n_customers(), n);
        for c in inst.customers() {
            let s = inst.site(c);
            prop_assert!((0.0..=100.0).contains(&s.x));
            prop_assert!((0.0..=100.0).contains(&s.y));
            prop_assert!((1.0..=50.0).contains(&s.demand));
            prop_assert!(s.ready <= s.due);
            prop_assert!(s.due + s.service + inst.dist(0, c) <= inst.horizon() + 1e-9);
        }
    }

    /// Solomon serialization round-trips arbitrary generated instances.
    #[test]
    fn solomon_round_trip(
        class_idx in 0u8..6, n in 1usize..60, seed in 0u64..1_000,
    ) {
        let inst = GeneratorConfig::new(class_from(class_idx), n, seed).build();
        let again = solomon::parse(&solomon::write(&inst)).expect("round trip parses");
        prop_assert_eq!(again.n_sites(), inst.n_sites());
        prop_assert_eq!(again.max_vehicles(), inst.max_vehicles());
        for i in 0..inst.n_sites() as SiteId {
            let (a, b) = (inst.site(i), again.site(i));
            prop_assert!((a.x - b.x).abs() < 1e-9);
            prop_assert!((a.y - b.y).abs() < 1e-9);
            prop_assert!((a.demand - b.demand).abs() < 1e-9);
            prop_assert!((a.ready - b.ready).abs() < 1e-9);
            prop_assert!((a.due - b.due).abs() < 1e-9);
            prop_assert!((a.service - b.service).abs() < 1e-9);
        }
    }

    /// Solution evaluation equals the sum of its route evaluations.
    #[test]
    fn solution_objectives_are_route_sums(
        class_idx in 0u8..6, n in 5usize..40, seed in 0u64..500, k in 1usize..6,
    ) {
        let inst = GeneratorConfig::new(class_from(class_idx), n, seed).build();
        let sol = random_solution(&inst, seed ^ 4, k);
        let total = sol.evaluate(&inst);
        let mut dist = 0.0;
        let mut tard = 0.0;
        for route in sol.routes() {
            let e = evaluate_route(&inst, route);
            dist += e.distance;
            tard += e.tardiness;
        }
        prop_assert!((total.distance - dist).abs() < 1e-9);
        prop_assert!((total.tardiness - tard).abs() < 1e-9);
        prop_assert_eq!(total.vehicles, sol.n_deployed());
    }
}
