//! The collaborative multisearch variant: several searchers with perturbed
//! parameters exchanging archive-improving solutions, compared against a
//! single sequential search via the set-coverage metric — the comparison
//! behind the "coll." rows of the paper's tables.
//!
//! ```text
//! cargo run --release --example collaborative [-- <searchers>]
//! ```

use std::sync::Arc;
use tsmo_suite::pareto::coverage;
use tsmo_suite::prelude::*;

fn main() {
    let searchers: usize = std::env::args()
        .nth(1)
        .map_or(4, |s| s.parse().expect("searcher count"));
    let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 120, 11).build());
    let cfg = TsmoConfig {
        max_evaluations: 15_000,
        seed: 5,
        ..TsmoConfig::default()
    };

    println!(
        "instance {} with {} customers\n",
        inst.name,
        inst.n_customers()
    );

    let seq = SequentialTsmo::new(cfg.clone()).run(&inst);
    println!(
        "sequential: {:>6.2}s, front of {} ({} feasible)",
        seq.runtime_seconds,
        seq.archive.len(),
        seq.feasible_front().len()
    );

    let coll = CollaborativeTsmo::new(cfg, searchers).run(&inst);
    println!(
        "collaborative ({searchers} searchers): {:>6.2}s, front of {} ({} feasible), {} total evaluations",
        coll.runtime_seconds,
        coll.archive.len(),
        coll.feasible_front().len(),
        coll.evaluations
    );

    let c_coll = coverage(&coll.feasible_vectors(), &seq.feasible_vectors()) * 100.0;
    let c_seq = coverage(&seq.feasible_vectors(), &coll.feasible_vectors()) * 100.0;
    println!("\nset coverage (paper's metric):");
    println!("  C(collaborative, sequential) = {c_coll:.1}%");
    println!("  C(sequential, collaborative) = {c_seq:.1}%");
    println!("\nvehicle counts on the feasible fronts:");
    println!(
        "  sequential:    best {} vehicles",
        seq.best_vehicles()
            .map_or_else(|| "-".into(), |v| v.to_string())
    );
    println!(
        "  collaborative: best {} vehicles",
        coll.best_vehicles()
            .map_or_else(|| "-".into(), |v| v.to_string())
    );
}
