//! Compares the runtime and solution quality of the sequential,
//! synchronous, and asynchronous variants on one instance — a one-instance
//! slice of the paper's Tables.
//!
//! ```text
//! cargo run --release --example parallel_speedup [-- <customers> <evals>]
//! ```

use std::sync::Arc;
use tsmo_suite::prelude::*;
use tsmo_suite::runstats::speedup_percent;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let size: usize = args.first().map_or(150, |s| s.parse().expect("customers"));
    let evals: u64 = args.get(1).map_or(30_000, |s| s.parse().expect("evals"));

    let inst = Arc::new(GeneratorConfig::new(InstanceClass::C1, size, 7).build());
    let cfg = TsmoConfig {
        max_evaluations: evals,
        seed: 3,
        ..TsmoConfig::default()
    };
    println!(
        "instance {} ({} customers), {} evaluations per run\n",
        inst.name, size, evals
    );
    println!(
        "{:<22} {:>10} {:>12} {:>10} {:>10}",
        "algorithm", "runtime", "best dist", "vehicles", "speedup"
    );

    let seq = ParallelVariant::Sequential.run(&inst, &cfg);
    let seq_time = seq.runtime_seconds;
    report("Sequential TSMO", &seq, seq_time);

    for p in [3usize, 6] {
        let sync = ParallelVariant::Synchronous(p).run(&inst, &cfg);
        report(&format!("TSMO sync. ({p})"), &sync, seq_time);
        let asy = ParallelVariant::Asynchronous(p).run(&inst, &cfg);
        report(&format!("TSMO async. ({p})"), &asy, seq_time);
    }
    println!("\n(speedup is the paper's convention: (T_seq/T_par − 1)·100%)");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 6 {
        println!(
            "note: this host reports {cores} core(s) — OS threads cannot show real\n\
             speedup beyond that; see the `virtual_cluster` example for the\n\
             virtual-time measurements the benchmark tables use"
        );
    }
}

fn report(label: &str, out: &TsmoOutcome, seq_time: f64) {
    let speedup = if out.runtime_seconds > 0.0 {
        format!("{:+.1}%", speedup_percent(seq_time, out.runtime_seconds))
    } else {
        "-".into()
    };
    println!(
        "{:<22} {:>9.2}s {:>12} {:>10} {:>10}",
        label,
        out.runtime_seconds,
        out.best_distance()
            .map_or_else(|| "-".into(), |d| format!("{d:.1}")),
        out.best_vehicles()
            .map_or_else(|| "-".into(), |v| v.to_string()),
        speedup
    );
}
