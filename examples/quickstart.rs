//! Quickstart: generate an instance, run the sequential multiobjective
//! tabu search, and print the Pareto front of trade-offs it found.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use tsmo_suite::prelude::*;

fn main() {
    // A 100-customer random instance with large time windows (class R2 of
    // the extended-Solomon benchmark family), deterministically generated.
    let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 100, 42).build());
    println!(
        "instance {}: {} customers, {} vehicles of capacity {}",
        inst.name,
        inst.n_customers(),
        inst.max_vehicles(),
        inst.capacity()
    );

    // Paper defaults, scaled down to a couple of seconds of runtime.
    let cfg = TsmoConfig {
        max_evaluations: 20_000,
        neighborhood_size: 200,
        seed: 1,
        ..TsmoConfig::default()
    };
    let outcome = SequentialTsmo::new(cfg).run(&inst);

    println!(
        "\n{} evaluations in {:.2}s ({} iterations)",
        outcome.evaluations, outcome.runtime_seconds, outcome.iterations
    );
    println!("\nPareto front (time-feasible solutions):");
    println!("{:>12} {:>9} {:>11}", "distance", "vehicles", "tardiness");
    let mut front: Vec<_> = outcome.feasible_front();
    front.sort_by(|a, b| {
        a.objectives
            .distance
            .partial_cmp(&b.objectives.distance)
            .expect("not NaN")
    });
    for entry in &front {
        println!(
            "{:>12.2} {:>9} {:>11.2}",
            entry.objectives.distance, entry.objectives.vehicles, entry.objectives.tardiness
        );
    }
    if let Some(best) = front.first() {
        println!(
            "\nbest-distance solution uses {} routes; the paper's permutation encoding:",
            best.solution.n_deployed()
        );
        let tour = best.solution.giant_tour(&inst);
        let shown: Vec<String> = tour.iter().take(30).map(|s| s.to_string()).collect();
        println!("P = ({}, …)  |P| = {}", shown.join(", "), tour.len());
    }
}
