//! Loading and solving a Solomon-format benchmark file.
//!
//! Writes a generated instance to disk in the classic Solomon layout,
//! reads it back through the parser (the same path a real Gehring–
//! Homberger file would take), and solves it.
//!
//! ```text
//! cargo run --release --example solomon_file [-- <path/to/instance.txt>]
//! ```

use std::sync::Arc;
use tsmo_suite::prelude::*;
use tsmo_suite::vrptw::solomon;

fn main() {
    let path = std::env::args().nth(1);
    let inst = match path {
        Some(p) => {
            println!("loading {p}");
            solomon::read_file(&p).expect("failed to parse the Solomon file")
        }
        None => {
            // No file given: round-trip a generated one to demonstrate.
            let generated = GeneratorConfig::new(InstanceClass::RC1, 80, 3).build();
            let dir = std::env::temp_dir().join("tsmo-suite");
            std::fs::create_dir_all(&dir).expect("temp dir");
            let file = dir.join("RC1_80_demo.txt");
            std::fs::write(&file, solomon::write(&generated)).expect("write demo file");
            println!("no file given; wrote and re-read {}", file.display());
            solomon::read_file(&file).expect("round trip")
        }
    };
    println!(
        "instance {}: {} customers, R = {}, capacity = {}, horizon = {}",
        inst.name,
        inst.n_customers(),
        inst.max_vehicles(),
        inst.capacity(),
        inst.horizon()
    );
    let problems = inst.validate();
    assert!(
        problems.is_empty(),
        "instance failed validation: {problems:?}"
    );

    let inst = Arc::new(inst);
    let cfg = TsmoConfig {
        max_evaluations: 15_000,
        seed: 9,
        ..TsmoConfig::default()
    };
    let out = SequentialTsmo::new(cfg).run(&inst);
    println!(
        "\nsolved in {:.2}s — {} non-dominated solutions, best distance {:?}, fewest vehicles {:?}",
        out.runtime_seconds,
        out.archive.len(),
        out.best_distance().map(|d| (d * 100.0).round() / 100.0),
        out.best_vehicles()
    );
}
