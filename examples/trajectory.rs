//! Records the asynchronous search trajectory (the data behind the paper's
//! Fig. 1) and prints summary statistics about neighbor staleness — how
//! often the master considered solutions generated from an earlier
//! iteration's current solution, which is the defining behavior of the
//! asynchronous variant.
//!
//! ```text
//! cargo run --release --example trajectory [-- <trace.csv>]
//! ```

use std::sync::Arc;
use tsmo_suite::prelude::*;

fn main() {
    let inst = Arc::new(GeneratorConfig::new(InstanceClass::R1, 80, 21).build());
    let cfg = TsmoConfig {
        max_evaluations: 8_000,
        neighborhood_size: 120,
        trace: true,
        seed: 2,
        ..TsmoConfig::default()
    };
    let out = AsyncTsmo::new(cfg, 4).run(&inst);
    let trace = out.trace.as_ref().expect("tracing was enabled");

    println!(
        "async run: {} iterations, {} trace points, {} selected currents",
        out.iterations,
        trace.len(),
        trace.trajectory().len()
    );
    // Staleness histogram: how many iterations old were considered
    // neighbors? (0 = same iteration, like the synchronous variant.)
    let mut histogram = std::collections::BTreeMap::<usize, usize>::new();
    for p in trace.iter() {
        *histogram
            .entry(p.iter_considered - p.iter_created)
            .or_default() += 1;
    }
    println!("\nstaleness histogram (iterations between creation and consideration):");
    for (staleness, count) in &histogram {
        let bar = "#".repeat((count * 60 / trace.len()).max(1));
        println!("  {staleness:>3}: {count:>7} {bar}");
    }
    println!("\nmax staleness: {} iterations", trace.max_staleness());

    // Trajectory of selected currents through objective space.
    println!("\nfirst 10 selected current solutions (distance, vehicles, tardiness):");
    for p in trace.trajectory().iter().take(10) {
        println!(
            "  iter {:>4}: ({:>10.2}, {:>3}, {:>10.2})",
            p.iter_considered, p.objectives.distance, p.objectives.vehicles, p.objectives.tardiness
        );
    }

    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, trace.to_csv()).expect("failed to write CSV");
        println!("\nwrote full trace to {path}");
    }
}
