//! The virtual-time cluster: how the suite reproduces the paper's speedup
//! measurements on hosts with fewer cores than the experiment's processor
//! count. Runs the simulated sync/async variants at several processor
//! counts and prints the virtual speedup curve.
//!
//! ```text
//! cargo run --release --example virtual_cluster
//! ```

use std::sync::Arc;
use tsmo_suite::prelude::*;
use tsmo_suite::runstats::speedup_percent;
use tsmo_suite::tsmo_core::{SimAsyncTsmo, SimCollaborativeTsmo, SimSyncTsmo};

fn main() {
    let inst = Arc::new(GeneratorConfig::new(InstanceClass::C1, 120, 3).build());
    let cfg = TsmoConfig {
        max_evaluations: 15_000,
        seed: 8,
        ..TsmoConfig::default()
    };
    println!(
        "instance {} ({} customers); per-message latency {:.1} ms\n",
        inst.name,
        inst.n_customers(),
        cfg.sim_comm_latency * 1e3
    );

    let seq = SequentialTsmo::new(cfg.clone()).run(&inst);
    println!("sequential wall time: {:.2}s\n", seq.runtime_seconds);
    println!(
        "{:>6} {:>14} {:>14} {:>14}",
        "procs", "sync makespan", "async makespan", "coll makespan"
    );
    for p in [2usize, 3, 6, 12] {
        let sync = SimSyncTsmo::new(cfg.clone(), p).run(&inst);
        let asy = SimAsyncTsmo::new(cfg.clone(), p).run(&inst);
        let coll = SimCollaborativeTsmo::new(cfg.clone(), p).run(&inst);
        println!(
            "{:>6} {:>9.2}s {:>+.0}% {:>8.2}s {:>+.0}% {:>8.2}s {:>+.0}%",
            p,
            sync.runtime_seconds,
            speedup_percent(seq.runtime_seconds, sync.runtime_seconds),
            asy.runtime_seconds,
            speedup_percent(seq.runtime_seconds, asy.runtime_seconds),
            coll.runtime_seconds,
            speedup_percent(seq.runtime_seconds, coll.runtime_seconds),
        );
    }
    println!(
        "\n(collaborative does P independent searches — its makespan tracks the\n\
         sequential time plus communication, hence the negative speedups, as in\n\
         the paper's tables)"
    );
}
