//! Regenerates the bundled Solomon-format instance under `data/`.
//!
//! The suite's problem set is generated (the original Gehring–Homberger
//! files are no longer hosted), but the CLI tools and the CI smoke test
//! want a file on disk to exercise the Solomon parser path. This example
//! writes that file deterministically from the generator, so it can be
//! recreated at any time:
//!
//! ```text
//! cargo run --example write_instance [-- <path>]
//! ```

use tsmo_suite::prelude::*;
use tsmo_suite::vrptw::solomon;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "data/r1-25.txt".into());
    let inst = GeneratorConfig::new(InstanceClass::R1, 25, 1).build();
    let text = solomon::write(&inst);
    // Round-trip check: the file must parse back to a valid instance.
    let back = solomon::parse(&text).expect("generated instance must round-trip");
    assert_eq!(back.n_customers(), inst.n_customers());
    std::fs::write(&path, text).expect("failed to write instance file");
    println!(
        "wrote {path}: {} ({} customers, R = {}, capacity = {})",
        inst.name,
        inst.n_customers(),
        inst.max_vehicles(),
        inst.capacity()
    );
}
