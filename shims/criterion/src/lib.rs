//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `criterion` with this shim (see `[patch.crates-io]` in the root
//! manifest). It keeps the bench sources compiling unchanged and runs each
//! benchmark as a short timed loop, printing mean wall-clock time per
//! iteration. There is no statistical analysis, outlier rejection, or HTML
//! report — this is a smoke-runner, not a measurement harness. Swap the
//! real crate back in for publishable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Iterations per benchmark in the shim (stands in for criterion's
/// sample-count machinery; [`BenchmarkGroup::sample_size`] overrides it).
const DEFAULT_SAMPLES: usize = 20;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            samples: DEFAULT_SAMPLES,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), DEFAULT_SAMPLES, &mut f);
        self
    }

    /// Accepted for compatibility; the shim has no config to apply it to.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Accepted for compatibility; the shim prints to stdout only.
    pub fn final_summary(&mut self) {}
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each bench in the group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Accepted for compatibility; the shim times a fixed iteration count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.samples, &mut f);
        self
    }

    /// Runs a benchmark with an explicit input value under `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id), self.samples, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op in the shim; kept for call-site parity).
    pub fn finish(self) {}
}

/// Identifier `function_name/parameter` for parameterised benches.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds the id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Id carrying only a parameter (criterion's shorthand form).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// How per-iteration setup cost relates to the routine; the shim times the
/// routine only, so the variants are interchangeable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; criterion would batch many per allocation.
    SmallInput,
    /// Large setup output; criterion would batch few.
    LargeInput,
    /// Setup output per single iteration.
    PerIteration,
}

/// Passed to benchmark closures; drives the timed loop.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.total += start.elapsed();
            self.iters += 1;
            drop(out);
        }
    }

    /// Times `routine` on fresh values from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.total += start.elapsed();
            self.iters += 1;
            drop(out);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let mean = if b.iters > 0 {
        b.total / b.iters as u32
    } else {
        Duration::ZERO
    };
    println!("bench {label:<50} {:>12.3?}/iter ({} iters)", mean, b.iters);
}

/// Declares a benchmark group runner, mirroring criterion's macro shape.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro shape.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_every_bench_once_per_sample() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut count = 0;
        g.bench_function("plain", |b| b.iter(|| count += 1));
        assert_eq!(count, 3);
        let mut batched = 0;
        g.bench_with_input(BenchmarkId::new("with_input", 42), &10, |b, v| {
            b.iter_batched(|| *v, |x| batched += x, BatchSize::SmallInput)
        });
        assert_eq!(batched, 30);
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        c.bench_function("demo", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn macros_expand_and_run() {
        demo_group();
    }
}
