//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `crossbeam` with this shim (see `[patch.crates-io]` in the root
//! manifest). It implements exactly the subset the workspace uses — the
//! MPMC `channel` module with disconnect semantics — on top of
//! `std::sync::{Mutex, Condvar}`. The API mirrors crossbeam-channel's so
//! the real crate can be swapped back in without source changes.

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels with disconnection.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Like crossbeam, printable regardless of whether T is Debug.
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`]: the channel is empty and every
    /// sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty (senders still connected).
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only when every receiver has been
        /// dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().expect("channel lock").queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel lock").senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            inner.senders -= 1;
            let disconnected = inner.senders == 0;
            drop(inner);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            match inner.queue.pop_front() {
                Some(msg) => Ok(msg),
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().expect("channel lock");
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.ready.wait(inner).expect("channel lock");
            }
        }

        /// Blocks until a message arrives, every sender is gone, or the
        /// timeout elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().expect("channel lock");
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, result) = self
                    .shared
                    .ready
                    .wait_timeout(inner, deadline - now)
                    .expect("channel lock");
                inner = guard;
                if result.timed_out() && inner.queue.is_empty() {
                    return if inner.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().expect("channel lock").queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel lock").receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.inner.lock().expect("channel lock").receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(3), Err(SendError(3)));
        }

        #[test]
        fn timeout_expires_when_empty() {
            let (tx, rx) = unbounded::<u8>();
            let start = Instant::now();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(20)),
                Err(RecvTimeoutError::Timeout)
            );
            assert!(start.elapsed() >= Duration::from_millis(15));
            drop(tx);
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..100u32 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv().unwrap());
            }
            handle.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn cloned_senders_keep_channel_alive() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(5).unwrap();
            assert_eq!(rx.recv(), Ok(5));
            drop(tx2);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
