//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free call shape
//! (`lock()` returns the guard directly; poisoning is ignored, matching
//! parking_lot's behavior of not poisoning at all). Only the types the
//! workspace could reasonably reach for are provided.

use std::sync::PoisonError;

/// A mutual-exclusion lock (std-backed, poison-transparent).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// A reader–writer lock (std-backed, poison-transparent).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
