//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `proptest` with this shim (see `[patch.crates-io]` in the root
//! manifest). It covers the subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(...)]`
//!   header and `arg in strategy` bindings;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`];
//! * [`Strategy`] implemented for numeric ranges and
//!   [`collection::vec`].
//!
//! Semantics differ from real proptest in one way that matters: failing
//! cases are **not shrunk** — the failing inputs are reported as drawn.
//! Sampling is deterministic per test (the RNG is seeded from the test
//! name), so failures reproduce across runs.

use std::ops::Range;

/// Deterministic test RNG (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the RNG from an arbitrary label (e.g. the test name).
    pub fn from_label(label: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        Self(h)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform index in `[0, n)`; `n` must be positive.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        (self.next_u64() % n as u64) as usize
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Length specification for [`collection::vec`]: an exact length or a
/// half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.max_exclusive - self.size.min;
        let len = self.size.min + if span > 0 { rng.index(span) } else { 0 };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, VecStrategy};

    /// A `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases drawn per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The error type property bodies produce through `prop_assert!`.
pub type TestCaseError = String;

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
    /// Module-style access (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// the stringified condition or a custom message) instead of panicking
/// mid-draw.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {:?} == {:?}",
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {:?} != {:?}",
                l,
                r
            ));
        }
    }};
}

/// Discards the current case when its inputs don't meet a precondition.
/// (The shim counts discarded cases as passed.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws `config.cases` input tuples and runs the
/// body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not for direct use.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_label(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!("property {} failed at case {case}: {message}", stringify!($name));
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(-1.0f64..1.0, 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn ranges_stay_in_bounds(x in 0.0f64..10.0, n in 1usize..5) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        fn vec_lengths_respect_range(v in prop::collection::vec(0u64..100, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            for x in &v {
                prop_assert!(*x < 100, "draw {} out of range", x);
            }
        }

        fn exact_length_vecs(v in pair()) {
            prop_assert_eq!(v.len(), 2);
        }

        fn assume_discards(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn deterministic_per_label() {
        let mut a = crate::TestRng::from_label("same");
        let mut b = crate::TestRng::from_label("same");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::from_label("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_panic_with_case_number() {
        // Simulate a generated property body failing.
        let config = ProptestConfig::with_cases(1);
        for case in 0..config.cases {
            let outcome: Result<(), String> = Err("boom".to_string());
            if let Err(message) = outcome {
                panic!("property demo failed at case {case}: {message}");
            }
        }
    }
}
