//! Umbrella crate for the TSMO suite: re-exports every workspace crate and
//! provides a `prelude` so examples and integration tests can pull the whole
//! public API with one `use`.
//!
//! The actual functionality lives in the member crates:
//!
//! * [`vrptw`] — CVRPTW problem model, instances, evaluation
//! * [`vrptw_operators`] — neighborhood operators and moves
//! * [`vrptw_construct`] — construction heuristics (Solomon I1, …)
//! * [`pareto`] — multiobjective machinery (dominance, archives, metrics)
//! * [`deme`] — the distributed-metaheuristics framework
//! * [`tsmo_core`] — the TSMO algorithm and its parallel variants
//! * [`tsmo_obs`] — deterministic telemetry (events, metrics, recorders)
//! * [`tsmo_faults`] — deterministic fault injection for the parallel runtime
//! * [`tsmo_serve`] — solver service: daemon, wire protocol, job queue, client
//! * [`tsmo_cluster`] — distributed multi-process collaborative multisearch over TCP
//! * [`moea`] — NSGA-II baseline for the paper's future-work comparison
//! * [`runstats`] — statistics for the experiment harness
//! * [`detrand`] — deterministic random number generation

pub use deme;
pub use detrand;
pub use moea;
pub use pareto;
pub use runstats;
pub use tsmo_cluster;
pub use tsmo_core;
pub use tsmo_faults;
pub use tsmo_obs;
pub use tsmo_serve;
pub use vrptw;
pub use vrptw_construct;
pub use vrptw_operators;

/// Everything an example or downstream user typically needs.
pub mod prelude {
    pub use detrand::{DefaultRng, Rng, Xoshiro256StarStar};
    pub use moea::{Nsga2, Nsga2Config, Paes, PaesConfig, Spea2, Spea2Config};
    pub use pareto::{coverage, dominates, Archive, Dominance, ParetoFront};
    pub use tsmo_cluster::{run_mesh, MeshClient, MeshJob, NodeConfig, Noded};
    pub use tsmo_core::{
        AdaptiveMemoryTs, AsyncTsmo, CancelToken, CollaborativeTsmo, HybridTsmo, ParallelVariant,
        SelectionRule, SequentialTsmo, SimAsyncTsmo, SimCollaborativeTsmo, SimSyncTsmo, StopCause,
        SyncTsmo, TsmoConfig, TsmoOutcome, WeightedSumTs,
    };
    pub use tsmo_faults::{FaultConfig, FaultHook, FaultPlan};
    pub use tsmo_obs::{MemoryRecorder, Recorder, SearchEvent};
    pub use tsmo_serve::{Client, JobSpec, Server, ServerConfig};
    pub use vrptw::{
        generator::{GeneratorConfig, InstanceClass},
        Instance, Objectives, Solution,
    };
    pub use vrptw_construct::{i1, nearest_neighbor, randomized_i1, savings, sweep, I1Config};
    pub use vrptw_operators::{descend, DescentConfig};
}
