//! Tests for the paper's qualitative claims, at integration level:
//! the synchronous variant's behavioral equivalence, the representation's
//! encoding, the three-objective structure, and the vehicles/distance
//! coupling argument of §II.A.

use std::sync::Arc;
use tsmo_suite::prelude::*;
use tsmo_suite::vrptw_construct::i1;

fn cfg(evals: u64) -> TsmoConfig {
    TsmoConfig {
        max_evaluations: evals,
        neighborhood_size: 60,
        ..TsmoConfig::default()
    }
}

/// §III.C: "the behavior [of the synchronous variant] remains unchanged"
/// w.r.t. the sequential algorithm — here exactly, via chunked RNG streams.
#[test]
fn sync_equals_sequential_across_classes_and_proc_counts() {
    for (class, seed) in [(InstanceClass::C1, 11u64), (InstanceClass::R2, 12)] {
        let inst = Arc::new(GeneratorConfig::new(class, 36, seed).build());
        for p in [2usize, 5] {
            let mut seq_cfg = cfg(1_800).with_seed(seed);
            seq_cfg.chunks = p;
            let seq = SequentialTsmo::new(seq_cfg).run(&inst);
            let sync = SyncTsmo::new(cfg(1_800).with_seed(seed), p).run(&inst);
            let norm = |mut v: Vec<[f64; 3]>| {
                v.sort_by(|a, b| a.partial_cmp(b).expect("not NaN"));
                v
            };
            assert_eq!(
                norm(seq.feasible_vectors()),
                norm(sync.feasible_vectors()),
                "{class:?} with {p} processors"
            );
            assert_eq!(seq.iterations, sync.iterations);
        }
    }
}

/// §II.A: the permutation string is `(0, …, 0)` of length `N + R + 1`, and
/// `f2` equals the number of `0 → non-zero` transitions.
#[test]
fn representation_matches_paper_definition() {
    let inst = Arc::new(GeneratorConfig::new(InstanceClass::C2, 20, 3).build());
    let sol = i1(&inst, &I1Config::default());
    let perm = sol.giant_tour(&inst);
    assert_eq!(perm.len(), inst.n_customers() + inst.max_vehicles() + 1);
    assert_eq!(perm[0], 0);
    assert_eq!(*perm.last().expect("non-empty"), 0);
    // f2 from the string, as defined in the paper.
    let f2_from_string = perm.windows(2).filter(|w| w[0] == 0 && w[1] > 0).count();
    assert_eq!(f2_from_string, sol.evaluate(&inst).vehicles);
    // Round trip.
    let back = Solution::from_giant_tour(&inst, &perm).expect("valid");
    assert_eq!(back, sol);
}

/// §II.A's argument: in Euclidean space, merging two routes (fewer
/// vehicles) cannot lengthen the total tour — removing a depot round trip
/// and splicing by the triangle inequality shortens (or preserves) f1.
#[test]
fn merging_routes_never_lengthens_in_euclidean_space() {
    let inst = Arc::new(GeneratorConfig::new(InstanceClass::R2, 30, 17).build());
    let sol = Solution::one_customer_per_route(&inst);
    // Merge routes pairwise by concatenation: f1 must not increase.
    let before = sol.evaluate(&inst);
    let mut merged: Vec<Vec<u16>> = Vec::new();
    let mut it = sol.routes().iter();
    while let Some(a) = it.next() {
        let mut r = a.clone();
        if let Some(b) = it.next() {
            r.extend_from_slice(b);
        }
        merged.push(r);
    }
    let merged = Solution::from_routes(merged);
    let after = merged.evaluate(&inst);
    assert!(after.vehicles < before.vehicles);
    assert!(
        after.distance <= before.distance + 1e-9,
        "triangle inequality: {} should be <= {}",
        after.distance,
        before.distance
    );
}

/// The search optimizes all three objectives: starting from a
/// deliberately bad (high-tardiness) region, the archive must contain
/// time-feasible solutions on a relaxed instance.
#[test]
fn search_recovers_time_feasibility_on_relaxed_instances() {
    let inst = Arc::new(GeneratorConfig::new(InstanceClass::C2, 40, 23).build());
    let out = SequentialTsmo::new(cfg(6_000).with_seed(2)).run(&inst);
    assert!(
        !out.feasible_front().is_empty(),
        "large-window instances must yield feasible archive members"
    );
}

/// Async and collaborative runs also respect the permutation invariant
/// under concurrency (no lost/duplicated customers through the channels).
#[test]
fn concurrent_variants_preserve_permutation_invariant() {
    let inst = Arc::new(GeneratorConfig::new(InstanceClass::R1, 40, 31).build());
    for variant in [
        ParallelVariant::Asynchronous(4),
        ParallelVariant::Collaborative(4),
    ] {
        let out = variant.run(&inst, &cfg(2_500));
        assert!(!out.archive.is_empty());
        for e in &out.archive {
            assert!(e.solution.check(&inst).is_empty(), "{variant:?}");
        }
    }
}
