//! End-to-end integration: generator → parser round trip → construction →
//! all four algorithm variants → multiobjective metrics, exercised through
//! the public API exactly as a downstream user would.

use std::sync::Arc;
use tsmo_suite::pareto::{coverage, non_dominated_indices};
use tsmo_suite::prelude::*;
use tsmo_suite::vrptw::solomon;
use tsmo_suite::vrptw_construct::{i1, nearest_neighbor, savings};

fn instance() -> Arc<Instance> {
    Arc::new(GeneratorConfig::new(InstanceClass::RC2, 50, 99).build())
}

#[test]
fn generated_instance_survives_solomon_round_trip_and_solves() {
    let inst = instance();
    let text = solomon::write(&inst);
    let reloaded = Arc::new(solomon::parse(&text).expect("round trip"));
    assert_eq!(reloaded.n_customers(), inst.n_customers());

    let cfg = TsmoConfig {
        max_evaluations: 2_000,
        neighborhood_size: 50,
        ..TsmoConfig::default()
    };
    // Same seed + same instance data => identical fronts even through the
    // serialization round trip.
    let a = SequentialTsmo::new(cfg.clone().with_seed(4)).run(&inst);
    let b = SequentialTsmo::new(cfg.with_seed(4)).run(&reloaded);
    assert_eq!(a.feasible_vectors(), b.feasible_vectors());
}

#[test]
fn all_constructors_feed_the_search() {
    let inst = instance();
    let mut rng = DefaultRng::seed_from_u64(8);
    for sol in [
        i1(&inst, &I1Config::random(&mut rng)),
        nearest_neighbor(&inst),
        savings(&inst),
    ] {
        assert!(sol.check(&inst).is_empty());
        let obj = sol.evaluate(&inst);
        assert!(obj.distance > 0.0);
        assert!(obj.vehicles >= 1 && obj.vehicles <= inst.max_vehicles());
    }
}

#[test]
fn variants_agree_on_accounting_and_validity() {
    let inst = instance();
    let cfg = TsmoConfig {
        max_evaluations: 2_000,
        neighborhood_size: 40,
        ..TsmoConfig::default()
    };
    for variant in [
        ParallelVariant::Sequential,
        ParallelVariant::Synchronous(3),
        ParallelVariant::Asynchronous(3),
    ] {
        let out = variant.run(&inst, &cfg);
        assert_eq!(out.evaluations, 2_000, "{variant:?}");
        assert_eq!(
            non_dominated_indices(&out.archive).len(),
            out.archive.len(),
            "{variant:?}: archive must be mutually non-dominated"
        );
        for e in &out.archive {
            assert!(e.solution.check(&inst).is_empty(), "{variant:?}");
            let fresh = e.solution.evaluate(&inst);
            assert!(
                (fresh.distance - e.objectives.distance).abs() < 1e-6,
                "{variant:?}: cached objectives must match re-evaluation"
            );
        }
    }
    // Collaborative: per-searcher budgets.
    let out = ParallelVariant::Collaborative(3).run(&inst, &cfg);
    assert_eq!(out.evaluations, 6_000);
}

#[test]
fn coverage_metric_is_sane_between_real_runs() {
    let inst = instance();
    let cfg = TsmoConfig {
        max_evaluations: 3_000,
        neighborhood_size: 50,
        ..TsmoConfig::default()
    };
    let a = SequentialTsmo::new(cfg.clone().with_seed(1)).run(&inst);
    let b = SequentialTsmo::new(cfg.with_seed(2)).run(&inst);
    let (fa, fb) = (a.feasible_vectors(), b.feasible_vectors());
    assert!(!fa.is_empty() && !fb.is_empty());
    let cab = coverage(&fa, &fb);
    let cba = coverage(&fb, &fa);
    assert!((0.0..=1.0).contains(&cab));
    assert!((0.0..=1.0).contains(&cba));
    // Self-coverage is always 1.
    assert_eq!(coverage(&fa, &fa), 1.0);
}

#[test]
fn longer_budgets_do_not_produce_worse_fronts() {
    let inst = instance();
    let short = SequentialTsmo::new(TsmoConfig {
        max_evaluations: 500,
        neighborhood_size: 50,
        seed: 6,
        ..TsmoConfig::default()
    })
    .run(&inst);
    let long = SequentialTsmo::new(TsmoConfig {
        max_evaluations: 8_000,
        neighborhood_size: 50,
        seed: 6,
        ..TsmoConfig::default()
    })
    .run(&inst);
    let (s, l) = (
        short.best_distance().expect("feasible"),
        long.best_distance().expect("feasible"),
    );
    assert!(
        l <= s * 1.02,
        "16x the budget should not be meaningfully worse: {l} vs {s}"
    );
}
